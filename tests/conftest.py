"""Shared fixtures for the test suite."""

import random

import pytest

from repro.attacks import AttackParams
from repro.dram.timing import DDR5Timing


@pytest.fixture
def rng():
    """A deterministic RNG; per-test isolation via fresh seeding."""
    return random.Random(0xDEC0DE)


@pytest.fixture
def small_params():
    """A fast attack-parameter set for simulation tests."""
    return AttackParams(max_act=73, intervals=200)


@pytest.fixture
def toy_timing():
    """A miniature DDR5 with M = 8 ACTs per interval for Monte-Carlo."""
    t_refi, t_rfc = 3900.0, 410.0
    return DDR5Timing(
        t_refw_ms=64 * t_refi * 1e-6,
        t_refi_ns=t_refi,
        t_rfc_ns=t_rfc,
        t_rc_ns=(t_refi - t_rfc) / 8,
    )
