"""Unit pins for :class:`repro.cache.BoundedCache`.

The engine's aggregation/plan memos used to clear wholesale at the
ceiling, throwing away the hot shared-interval entries exactly when a
long streaming run needs them; the bounded cache must instead evict
only the stalest fraction and keep recently touched entries resident.
"""

import pytest

from repro.cache import BoundedCache


class TestBoundedCache:
    def test_get_put_roundtrip(self):
        cache = BoundedCache(8)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert "a" in cache
        assert len(cache) == 1

    def test_eviction_keeps_hot_entries(self):
        cache = BoundedCache(8)
        for i in range(8):
            cache.put(i, i)
        # Touch a subset so they are the most recently used.
        for i in (4, 5, 6, 7):
            assert cache.get(i) == i
        cache.put("overflow", 99)  # triggers eviction of stalest quarter
        assert len(cache) < 9
        assert cache.get("overflow") == 99
        for i in (4, 5, 6, 7):
            assert cache.get(i) == i, "recently touched entry was evicted"

    def test_eviction_drops_stalest(self):
        cache = BoundedCache(8)
        for i in range(8):
            cache.put(i, i)
        # Refresh everything except 0 and 1.
        for i in range(2, 8):
            cache.get(i)
        cache.put("new", "x")
        assert cache.get(0) is None
        assert cache.get(1) is None

    def test_never_exceeds_capacity(self):
        cache = BoundedCache(8)
        for i in range(1000):
            cache.put(i, i)
            assert len(cache) <= 8

    def test_clear(self):
        cache = BoundedCache(8)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.get("a") is None

    def test_overwrite_same_key(self):
        cache = BoundedCache(8)
        cache.put("a", 1)
        cache.put("a", 2)
        assert cache.get("a") == 2
        assert len(cache) == 1

    def test_tiny_capacity_rejected(self):
        with pytest.raises(ValueError):
            BoundedCache(2)

    def test_cached_none_distinguishable_from_miss(self):
        """A cached ``None`` must be a hit, not a perpetual rebuild.

        Callers pass a private sentinel as ``default`` to tell the two
        apart; a cached ``None`` also refreshes recency like any other
        hit, so such entries survive eviction sweeps.
        """
        sentinel = object()
        cache = BoundedCache(8)
        assert cache.get("a", sentinel) is sentinel
        cache.put("a", None)
        assert cache.get("a", sentinel) is None
        assert "a" in cache
        # The hit must refresh recency: fill to capacity, keep touching
        # the None entry, and it must survive the eviction sweep.
        for i in range(7):
            cache.put(i, i)
        cache.get("a", sentinel)
        cache.put("overflow", 1)
        assert "a" in cache
        assert cache.get("a", sentinel) is None

    def test_get_default_returned_only_on_miss(self):
        cache = BoundedCache(8)
        assert cache.get("missing", 42) == 42
        cache.put("present", 0)
        assert cache.get("present", 42) == 0
