"""Tests for the Delayed Mitigation Queue (paper Section VI-C/D)."""

import random

import pytest

from repro.core.dmq import DelayedMitigationQueue
from repro.core.mint import MintTracker
from repro.trackers.base import MitigationRequest, Tracker
from repro.trackers.parfm import ParfmTracker


class _ScriptedTracker(Tracker):
    """A tracker whose refresh hands over a scripted row sequence."""

    name = "scripted"

    def __init__(self, rows):
        self.rows = list(rows)
        self.activations = 0
        self.refreshes = 0

    def on_activate(self, row):
        self.activations += 1

    def on_refresh(self):
        self.refreshes += 1
        if self.rows:
            return [MitigationRequest(self.rows.pop(0))]
        return []


def make_dmq(rows=(1, 2, 3, 4, 5), max_act=4, depth=4):
    return DelayedMitigationQueue(_ScriptedTracker(rows), max_act=max_act, depth=depth)


class TestPseudoMitigation:
    def test_triggers_past_max_act(self):
        dmq = make_dmq(max_act=4)
        for row in range(5):  # 5th activation exceeds M=4
            dmq.on_activate(row)
        assert dmq.pseudo_mitigations == 1
        assert len(dmq.queue) == 1

    def test_no_trigger_within_budget(self):
        dmq = make_dmq(max_act=4)
        for row in range(4):
            dmq.on_activate(row)
        assert dmq.pseudo_mitigations == 0

    def test_act_counter_resets_at_refresh(self):
        dmq = make_dmq(max_act=4)
        for row in range(4):
            dmq.on_activate(row)
        dmq.on_refresh()
        for row in range(4):
            dmq.on_activate(row)
        assert dmq.pseudo_mitigations == 0


class TestFifoOrder:
    def test_oldest_first(self):
        dmq = make_dmq(rows=(11, 22, 33), max_act=2)
        for _ in range(6):  # forces two pseudo-mitigations (rows 11, 22)
            dmq.on_activate(0)
        first = dmq.on_refresh()
        second = dmq.on_refresh()
        assert first == [MitigationRequest(11)]
        # The refresh also collected the tracker's fresh selections,
        # which queue behind 22.
        assert second == [MitigationRequest(22)]

    def test_fresh_selection_queued_behind(self):
        dmq = make_dmq(rows=(11, 22), max_act=2)
        for _ in range(3):
            dmq.on_activate(0)  # pseudo-mitigation: 11 queued
        result = dmq.on_refresh()  # fresh selection 22 joins queue
        assert result == [MitigationRequest(11)]
        assert list(dmq.queue) == [MitigationRequest(22)]

    def test_empty_queue_passthrough(self):
        dmq = make_dmq(rows=(77,), max_act=10)
        dmq.on_activate(0)
        assert dmq.on_refresh() == [MitigationRequest(77)]


class TestBoundedDelay:
    def test_mint_dmq_caps_decoy_attack(self):
        """The §VI-D bound: a queued row absorbs at most 4M = 292 extra
        activations before its mitigation lands."""
        rng = random.Random(3)
        mint = MintTracker(max_act=73, rng=rng)
        dmq = DelayedMitigationQueue(mint, max_act=73, depth=4)
        # Hammer one row through a postponed 5-interval super-window.
        target = 500
        unmitigated = 0
        worst = 0
        for interval in range(200):
            for _ in range(73):
                dmq.on_activate(target)
                unmitigated += 1
                worst = max(worst, unmitigated)
            if interval % 5 == 4:  # batch of 5 refreshes
                for _ in range(5):
                    for request in dmq.on_refresh():
                        if request.row == target:
                            unmitigated = 0
        assert worst <= 5 * 73 + 4 * 73  # selection latency + queue delay

    def test_depth_bounds_queue(self):
        dmq = make_dmq(rows=range(100), max_act=1, depth=4)
        for _ in range(50):
            dmq.on_activate(0)
        assert len(dmq.queue) <= 4
        assert dmq.overflow_drops > 0


class TestIntegrationWithRealTrackers:
    def test_wraps_parfm(self):
        parfm = ParfmTracker(max_act=8, rng=random.Random(1))
        dmq = DelayedMitigationQueue(parfm, max_act=8)
        for _ in range(20):
            dmq.on_activate(5)
        requests = dmq.on_refresh()
        assert requests and requests[0].row == 5

    def test_name_and_storage(self):
        mint = MintTracker(rng=random.Random(0))
        dmq = DelayedMitigationQueue(mint, max_act=73)
        assert dmq.name == "MINT+DMQ"
        # MINT 32 bits + 4 x 19-bit entries = 108 bits = 13.5 bytes,
        # under the paper's 15-byte budget.
        assert dmq.storage_bits == 32 + 4 * 19
        assert dmq.storage_bits / 8 < 15

    def test_reset_clears_everything(self):
        dmq = make_dmq(max_act=1)
        for _ in range(10):
            dmq.on_activate(0)
        dmq.reset()
        assert not dmq.queue
        assert dmq.num_acts == 0


class TestValidation:
    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            DelayedMitigationQueue(_ScriptedTracker([]), depth=0)

    def test_rejects_bad_max_act(self):
        with pytest.raises(ValueError):
            DelayedMitigationQueue(_ScriptedTracker([]), max_act=0)
