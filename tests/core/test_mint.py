"""Tests for the MINT tracker (paper Section V)."""

import random
from collections import Counter

import pytest

from repro.core.mint import MintTracker
from repro.trackers.base import MitigationRequest


def make(seed=1, **kwargs):
    return MintTracker(rng=random.Random(seed), **kwargs)


class TestSelection:
    def test_selects_row_at_san(self):
        tracker = make()
        tracker.san = 3
        tracker.sar = None
        tracker.can = 0
        for position, row in enumerate([10, 11, 12, 13, 14], start=1):
            tracker.on_activate(row)
        assert tracker.sar == 12

    def test_no_selection_before_san(self):
        tracker = make()
        tracker.san = 5
        tracker.sar = None
        tracker.can = 0
        tracker.on_activate(10)
        assert tracker.sar is None

    def test_selection_never_overwritten(self):
        """The defining fix over InDRAM-PARA: exactly one selection."""
        tracker = make()
        tracker.san = 1
        tracker.sar = None
        tracker.can = 0
        for row in range(100, 173):
            tracker.on_activate(row)
        assert tracker.sar == 100

    def test_full_window_guarantees_selection(self):
        """A row occupying all M slots is always selected (§V-C)."""
        for seed in range(20):
            tracker = make(seed=seed, transitive=False)
            tracker.on_refresh()
            for _ in range(73):
                tracker.on_activate(42)
            requests = tracker.on_refresh()
            assert requests and requests[0].row == 42

    def test_mitigation_probability_value(self):
        assert make(transitive=False).selection_probability == pytest.approx(1 / 73)
        assert make(transitive=True).selection_probability == pytest.approx(1 / 74)


class TestRefreshCycle:
    def test_refresh_returns_selection(self):
        tracker = make()
        tracker.san = 1
        tracker.sar = None
        tracker.can = 0
        tracker.on_activate(55)
        requests = tracker.on_refresh()
        assert requests == [MitigationRequest(55, 1)]

    def test_refresh_without_selection_is_empty(self):
        tracker = make(transitive=False)
        tracker.on_refresh()
        assert tracker.on_refresh() == []

    def test_can_resets_each_interval(self):
        tracker = make()
        for row in range(5):
            tracker.on_activate(row)
        tracker.on_refresh()
        assert tracker.can == 0

    def test_reset_restores_power_on_state(self):
        tracker = make()
        for row in range(10):
            tracker.on_activate(row)
        tracker.reset()
        assert tracker.can == 0
        assert tracker.sar is None
        assert tracker.selections == 0


class TestUniformity:
    def test_selection_uniform_over_positions(self):
        """Property 2 of Section V-D: every position equally likely.

        Chi-square-style bound: with 73 positions and N windows each
        position's hit count should be near N/73.
        """
        tracker = make(seed=7, transitive=False)
        windows = 20_000
        hits = Counter()
        for _ in range(windows):
            tracker.on_refresh()
            for position in range(1, 74):
                tracker.on_activate(position)
            for request in tracker.on_refresh():
                hits[request.row] += 1
            tracker.on_refresh()
        expected = sum(hits.values()) / 73
        for position in range(1, 74):
            assert abs(hits[position] - expected) < 6 * expected ** 0.5

    def test_n_copies_n_times_likelier(self):
        """Property 3: c copies => c-times higher selection odds."""
        tracker = make(seed=11, transitive=False)
        windows = 12_000
        hits = Counter()
        for _ in range(windows):
            tracker.on_refresh()
            # Row 1 occupies 8 slots, rows 2..66 one slot each.
            for _ in range(8):
                tracker.on_activate(1)
            for row in range(2, 67):
                tracker.on_activate(row)
            for request in tracker.on_refresh():
                hits[request.row] += 1
        single = sum(hits[row] for row in range(2, 67)) / 65
        assert hits[1] == pytest.approx(8 * single, rel=0.25)


class TestTransitiveSlot:
    def test_slot_zero_preserves_sar_and_raises_distance(self):
        tracker = make(transitive=True)
        tracker.sar = 99
        tracker._distance = 1
        tracker.san = None
        # Force the zero draw.
        tracker.rng = _ForcedRng([0])
        tracker._draw_san()
        assert tracker.sar == 99
        assert tracker._distance == 2

    def test_consecutive_zeros_recurse(self):
        tracker = make(transitive=True)
        tracker.sar = 99
        tracker._distance = 1
        tracker.rng = _ForcedRng([0, 0])
        tracker._draw_san()
        tracker._draw_san()
        assert tracker._distance == 3

    def test_transitive_mitigation_rate_near_one_over_74(self):
        tracker = make(seed=3, transitive=True)
        windows = 30_000
        transitive = 0
        for _ in range(windows):
            for _ in range(73):
                tracker.on_activate(7)
            for request in tracker.on_refresh():
                if request.distance > 1:
                    transitive += 1
        rate = transitive / windows
        assert rate == pytest.approx(1 / 74, rel=0.25)

    def test_non_transitive_never_draws_zero(self):
        tracker = make(seed=5, transitive=False)
        for _ in range(2000):
            requests = tracker.on_refresh()
            for request in requests:
                assert request.distance == 1


class TestStorage:
    def test_four_bytes_per_bank(self):
        """Section VIII-C: CAN(7) + SAN(7) + SAR(18) = 32 bits."""
        assert make().storage_bits == 32

    def test_single_entry(self):
        assert make().entries == 1


class TestValidation:
    def test_rejects_bad_max_act(self):
        with pytest.raises(ValueError):
            MintTracker(max_act=0)


class _ForcedRng:
    """Deterministic stand-in returning a scripted randint sequence."""

    def __init__(self, values):
        self.values = list(values)

    def randint(self, lo, hi):
        return self.values.pop(0)
