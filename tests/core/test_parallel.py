"""Pool guards and fan-out semantics of :mod:`repro.parallel`."""

import pytest

import repro.parallel
from repro.parallel import (
    MIN_POOL_TASKS,
    effective_workers,
    fork_imap_unordered,
    fork_map,
)


@pytest.fixture
def four_cpus(monkeypatch):
    monkeypatch.setattr(repro.parallel, "default_workers", lambda: 4)


@pytest.fixture
def one_cpu(monkeypatch):
    monkeypatch.setattr(repro.parallel, "default_workers", lambda: 1)


def square(x):
    return x * x


class TestEffectiveWorkers:
    def test_serial_request_stays_serial(self, four_cpus):
        assert effective_workers(1, 100) == 1
        assert effective_workers(0, 100) == 1

    def test_tiny_task_list_collapses(self, four_cpus):
        assert effective_workers(4, MIN_POOL_TASKS - 1) == 1
        assert effective_workers(4, MIN_POOL_TASKS) > 1

    def test_one_usable_cpu_collapses(self, one_cpu):
        """The 1-CPU-container guard: a pool there only loses."""
        assert effective_workers(8, 100) == 1

    def test_never_exceeds_task_count(self, four_cpus):
        assert effective_workers(8, 3) == 3

    def test_no_fork_collapses(self, four_cpus, monkeypatch):
        monkeypatch.setattr(
            repro.parallel, "fork_available", lambda: False
        )
        assert effective_workers(4, 100) == 1


class TestForkMap:
    def test_matches_serial_map(self, four_cpus):
        items = list(range(20))
        assert fork_map(square, items, n_workers=4) == [
            square(x) for x in items
        ]

    def test_closures_cross_the_fork(self, four_cpus):
        offset = 1000
        assert fork_map(lambda x: x + offset, [1, 2, 3], n_workers=2) == [
            1001, 1002, 1003,
        ]

    def test_guarded_serial_path_identical(self, one_cpu):
        assert fork_map(square, list(range(8)), n_workers=4) == [
            square(x) for x in range(8)
        ]

    def test_empty_input(self):
        assert fork_map(square, [], n_workers=4) == []


class TestForkImapUnordered:
    def test_yields_every_indexed_result(self, four_cpus):
        items = list(range(12))
        pairs = sorted(fork_imap_unordered(square, items, n_workers=4))
        assert pairs == [(i, square(x)) for i, x in enumerate(items)]

    def test_serial_fallback_preserves_order(self, one_cpu):
        pairs = list(fork_imap_unordered(square, [3, 1, 2], n_workers=4))
        assert pairs == [(0, 9), (1, 1), (2, 4)]

    def test_results_stream_incrementally(self, one_cpu):
        seen = []
        for index, value in fork_imap_unordered(
            seen.append, [10, 20], n_workers=1
        ):
            assert len(seen) == index + 1
