"""Tests for the RFM co-design machinery (paper Section VII)."""

import pytest

from repro.core.rfm import RaaCounter, RfmConfig, RfmController, mint_interval_for_rfm


class TestRaaCounter:
    def test_fires_at_threshold(self):
        counter = RaaCounter(RfmConfig(rfm_th=4))
        fired = [counter.on_activate() for _ in range(8)]
        assert fired == [False, False, False, True, False, False, False, True]

    def test_resets_after_fire(self):
        counter = RaaCounter(RfmConfig(rfm_th=2))
        counter.on_activate()
        counter.on_activate()
        assert counter.count == 0
        assert counter.rfms_issued == 1

    def test_reset_method(self):
        counter = RaaCounter(RfmConfig(rfm_th=4))
        counter.on_activate()
        counter.reset()
        assert counter.count == 0


class TestRfmController:
    def test_per_bank_independence(self):
        controller = RfmController(num_banks=2, config=RfmConfig(rfm_th=2))
        assert not controller.on_activate(0)
        assert not controller.on_activate(1)
        assert controller.on_activate(0)
        assert controller.total_rfms == 1

    def test_total_rfms_accumulates(self):
        controller = RfmController(num_banks=4, config=RfmConfig(rfm_th=1))
        for bank in range(4):
            controller.on_activate(bank)
        assert controller.total_rfms == 4

    def test_rejects_zero_banks(self):
        with pytest.raises(ValueError):
            RfmController(num_banks=0)


class TestMintCoDesign:
    @pytest.mark.parametrize("rfm_th", [16, 32])
    def test_interval_equals_threshold(self, rfm_th):
        """Section VII: MINT+RFM32 selects URAND(0,32), etc."""
        assert mint_interval_for_rfm(rfm_th) == rfm_th

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            mint_interval_for_rfm(0)
        with pytest.raises(ValueError):
            RfmConfig(rfm_th=0)
