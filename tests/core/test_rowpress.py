"""Tests for the Row-Press / ImPress extension (paper Appendix C)."""

import random

import pytest

from repro.core.rowpress import (
    EACT_FRACTION_BITS,
    RowPressMintTracker,
    equivalent_activations,
)
from repro.dram.timing import DEFAULT_TIMING


class TestEquivalentActivations:
    def test_equation_nine(self):
        """EACT = (tON + tPRE) / tRC."""
        eact = equivalent_activations(1000.0)
        assert eact == pytest.approx((1000.0 + 16.0) / 48.0)

    def test_minimal_open_time_near_one(self):
        # A normal activation (row open ~tRAS) is ~one EACT.
        eact = equivalent_activations(DEFAULT_TIMING.t_rc_ns - DEFAULT_TIMING.t_rp_ns)
        assert eact == pytest.approx(1.0)

    def test_long_open_counts_more(self):
        # Row held open for 5 tREFI (the Row-Press maximum).
        eact = equivalent_activations(5 * 3900.0)
        assert eact > 400

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            equivalent_activations(-1.0)


class TestRowPressTracker:
    def make(self, seed=1):
        return RowPressMintTracker(rng=random.Random(seed))

    def test_normal_activations_behave_like_mint(self):
        tracker = self.make()
        tracker.san = 3
        tracker.sar = None
        tracker.can = 0.0
        for row in (10, 11, 12, 13):
            tracker.on_activate(row)
        assert tracker.sar == 12

    def test_long_open_row_crosses_san_faster(self):
        """A row held open accrues EACT and is likelier to be selected:
        the ImPress defence against Row-Press."""
        tracker = self.make()
        tracker.san = 10
        tracker.sar = None
        tracker.can = 0.0
        # One Row-Press style activation held open ~9 tRC crosses
        # CAN from 0 past SAN=10 in a single event.
        tracker.on_activate_timed(77, t_on_ns=10 * 48.0)
        assert tracker.sar == 77

    def test_fixed_point_quantisation(self):
        tracker = self.make()
        tracker.san = None
        tracker.on_activate_timed(5, t_on_ns=32.0)
        scaled = tracker.can * (1 << EACT_FRACTION_BITS)
        assert scaled == pytest.approx(round(scaled))

    def test_refresh_resets_float_can(self):
        tracker = self.make()
        tracker.on_activate(3)
        tracker.on_refresh()
        assert tracker.can == 0.0

    def test_storage_seventeen_ish_bytes_with_dmq(self):
        """Appendix C: total grows from 15 to ~17 bytes per bank."""
        from repro.analysis.storage import mint_impress_storage

        assert 15 <= mint_impress_storage().bytes <= 17

    def test_guaranteed_selection_under_full_window(self):
        for seed in range(10):
            tracker = RowPressMintTracker(
                max_act=73, transitive=False, rng=random.Random(seed)
            )
            tracker.on_refresh()
            for _ in range(73):
                tracker.on_activate(9)
            requests = tracker.on_refresh()
            assert requests and requests[0].row == 9
