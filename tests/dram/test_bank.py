"""Tests for the timing-level bank model used by the perf simulator."""

from repro.dram.bank import Bank
from repro.dram.timing import DEFAULT_TIMING


class TestRowBuffer:
    def test_first_access_is_miss(self):
        bank = Bank(DEFAULT_TIMING)
        bank.access(row=5, now_ns=0.0)
        assert bank.stats.row_misses == 1
        assert bank.stats.activations == 1

    def test_repeat_access_is_hit(self):
        bank = Bank(DEFAULT_TIMING)
        bank.access(5, 0.0)
        bank.access(5, 1000.0)
        assert bank.stats.row_hits == 1
        assert bank.stats.activations == 1

    def test_conflict_reactivates(self):
        bank = Bank(DEFAULT_TIMING)
        bank.access(5, 0.0)
        bank.access(6, 1000.0)
        assert bank.stats.activations == 2

    def test_closed_page_never_hits(self):
        bank = Bank(DEFAULT_TIMING, closed_page=True)
        bank.access(5, 0.0)
        bank.access(5, 1000.0)
        assert bank.stats.row_hits == 0
        assert bank.stats.activations == 2

    def test_hit_faster_than_miss(self):
        bank = Bank(DEFAULT_TIMING)
        miss_done = bank.access(5, 0.0)
        hit_done = bank.access(5, miss_done)
        assert hit_done - miss_done < miss_done - 0.0


class TestTiming:
    def test_trc_enforced_between_acts(self):
        bank = Bank(DEFAULT_TIMING, closed_page=True)
        first = bank.access(1, 0.0)
        second = bank.access(2, first)
        # Second ACT cannot start before tRC after the first.
        assert second >= DEFAULT_TIMING.t_rc_ns

    def test_busy_bank_queues_requests(self):
        bank = Bank(DEFAULT_TIMING)
        done = bank.access(1, 0.0)
        done2 = bank.access(2, 0.0)  # arrives while busy
        assert done2 > done

    def test_refresh_blocks_for_trfc(self):
        bank = Bank(DEFAULT_TIMING)
        free = bank.refresh(0.0)
        assert free == DEFAULT_TIMING.t_rfc_ns
        assert bank.stats.refreshes == 1

    def test_rfm_blocks_half_of_drfm(self):
        """tRFM_sb = 205 ns vs tDRFM_sb = 410 ns (Section VIII-A)."""
        bank_a, bank_b = Bank(DEFAULT_TIMING), Bank(DEFAULT_TIMING)
        rfm_free = bank_a.rfm(0.0)
        drfm_free = bank_b.drfm(0.0)
        assert drfm_free == 2 * rfm_free

    def test_block_closes_open_row(self):
        bank = Bank(DEFAULT_TIMING)
        bank.access(5, 0.0)
        bank.refresh(1000.0)
        bank.access(5, 2000.0)
        assert bank.stats.row_misses == 2
