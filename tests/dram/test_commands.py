"""Tests for the DRAM command vocabulary."""

import pytest

from repro.dram.commands import Command, CommandKind, act, drfm, ref, rfm


class TestConstructors:
    def test_act_carries_row(self):
        command = act(42, bank=3)
        assert command.kind is CommandKind.ACT
        assert command.row == 42
        assert command.bank == 3

    def test_ref_has_no_row(self):
        assert ref().row is None

    def test_rfm_has_no_row(self):
        assert rfm(bank=1).kind is CommandKind.RFM

    def test_drfm_carries_row(self):
        command = drfm(7)
        assert command.kind is CommandKind.DRFM
        assert command.row == 7


class TestValidation:
    def test_act_requires_row(self):
        with pytest.raises(ValueError):
            Command(CommandKind.ACT)

    def test_drfm_requires_row(self):
        with pytest.raises(ValueError):
            Command(CommandKind.DRFM)

    def test_commands_hashable(self):
        assert len({act(1), act(1), act(2)}) == 2
