"""Tests for the device-level DRAM model (auto-refresh, mitigation)."""

from repro.dram.device import DeviceConfig, DramDevice


def make_device(trh=100, rows=1024, refi_per_refw=64, banks=1, blast_radius=1):
    return DramDevice(
        DeviceConfig(
            num_banks=banks,
            rows_per_bank=rows,
            trh=trh,
            blast_radius=blast_radius,
            refi_per_refw=refi_per_refw,
        )
    )


class TestAutoRefresh:
    def test_rolling_slices_cover_all_rows(self):
        device = make_device(rows=1024, refi_per_refw=64)
        covered = set()
        for _ in range(64):
            lo, hi = device.auto_refresh(0)
            covered.update(range(lo, hi))
        assert covered == set(range(1024))

    def test_slice_restores_disturbance(self):
        device = make_device(rows=1024, refi_per_refw=64)
        device.activate(0, 1)  # disturbs rows 0 and 2
        lo, hi = device.auto_refresh(0)  # refreshes rows [0, 16)
        assert device.banks[0].disturbance(0) == 0.0
        assert device.banks[0].disturbance(2) == 0.0

    def test_slice_leaves_other_rows(self):
        device = make_device(rows=1024, refi_per_refw=64)
        device.activate(0, 500)
        device.auto_refresh(0)  # refreshes [0, 16) only
        assert device.banks[0].disturbance(499) == 1.0

    def test_wraps_after_full_window(self):
        device = make_device(rows=1024, refi_per_refw=64)
        for _ in range(64):
            device.auto_refresh(0)
        lo, _hi = device.auto_refresh(0)
        assert lo == 0


class TestMitigation:
    def test_distance_one(self):
        device = make_device()
        device.activate(0, 100)
        refreshed = device.mitigate(0, 100, distance=1)
        assert sorted(refreshed) == [99, 101]

    def test_distance_two_is_transitive(self):
        device = make_device()
        refreshed = device.mitigate(0, 100, distance=2)
        assert sorted(refreshed) == [98, 102]

    def test_mitigation_is_silent_activation(self):
        device = make_device()
        device.mitigate(0, 100, distance=1)
        # Refreshing 99 and 101 disturbs 98 and 102.
        assert device.banks[0].disturbance(98) == 1.0
        assert device.banks[0].disturbance(102) == 1.0

    def test_edge_aggressor(self):
        device = make_device()
        refreshed = device.mitigate(0, 0, distance=1)
        assert refreshed == [1]


class TestMultiBank:
    def test_banks_are_independent(self):
        device = make_device(banks=2, trh=2)
        device.activate(0, 100)
        device.activate(0, 100)
        assert device.banks[0].any_flip
        assert not device.banks[1].any_flip
        assert device.any_flip

    def test_flips_accessor(self):
        device = make_device(banks=2, trh=1)
        device.activate(1, 100)
        assert not device.flips(0)
        assert device.flips(1)
