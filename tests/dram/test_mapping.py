"""Tests for logical/physical row mapping and rank address decode."""

import pytest

from repro.dram.mapping import (
    ChannelAddressMap,
    RankAddressMap,
    RowMapping,
    ScrambledRowMapping,
)


class TestIdentityMapping:
    def test_round_trip(self):
        mapping = RowMapping(1024)
        for row in (0, 1, 511, 1023):
            assert mapping.to_logical(mapping.to_physical(row)) == row

    def test_identity(self):
        mapping = RowMapping(16)
        assert all(mapping.to_physical(r) == r for r in range(16))

    def test_out_of_range_rejected(self):
        mapping = RowMapping(16)
        with pytest.raises(ValueError):
            mapping.to_physical(16)
        with pytest.raises(ValueError):
            mapping.to_physical(-1)

    def test_zero_rows_rejected(self):
        with pytest.raises(ValueError):
            RowMapping(0)


class TestScrambledMapping:
    def test_is_bijection(self):
        mapping = ScrambledRowMapping(997)
        images = {mapping.to_physical(r) for r in range(997)}
        assert len(images) == 997

    def test_round_trip(self):
        mapping = ScrambledRowMapping(1 << 12)
        for row in (0, 7, 100, 4095):
            assert mapping.to_logical(mapping.to_physical(row)) == row

    def test_breaks_adjacency(self):
        """The point of the model: logical neighbours are generally not
        physical neighbours (Section II-D)."""
        mapping = ScrambledRowMapping(1 << 12)
        adjacent = sum(
            1
            for r in range(1000)
            if abs(mapping.to_physical(r) - mapping.to_physical(r + 1)) == 1
        )
        assert adjacent < 10

    def test_different_keys_differ(self):
        a = ScrambledRowMapping(1 << 10, key=1)
        b = ScrambledRowMapping(1 << 10, key=999999)
        assert any(a.to_physical(r) != b.to_physical(r) for r in range(100))


class TestRankAddressMap:
    def test_interleaved_stripes_consecutive_addresses(self):
        mapping = RankAddressMap(4, 16)
        assert [mapping.decode(a)[0] for a in range(8)] == [
            0, 1, 2, 3, 0, 1, 2, 3,
        ]
        assert mapping.decode(4) == (0, 1)

    def test_row_major_fills_banks_in_turn(self):
        mapping = RankAddressMap(4, 16, policy="row-major")
        assert mapping.decode(0) == (0, 0)
        assert mapping.decode(15) == (0, 15)
        assert mapping.decode(16) == (1, 0)

    @pytest.mark.parametrize("policy", RankAddressMap.POLICIES)
    def test_round_trip_bijection(self, policy):
        mapping = RankAddressMap(3, 8, policy=policy)
        decoded = {mapping.decode(a) for a in range(mapping.num_addresses)}
        assert len(decoded) == 24
        for address in range(mapping.num_addresses):
            assert mapping.encode(*mapping.decode(address)) == address

    def test_out_of_range_rejected(self):
        mapping = RankAddressMap(2, 8)
        with pytest.raises(ValueError):
            mapping.decode(16)
        with pytest.raises(ValueError):
            mapping.encode(2, 0)
        with pytest.raises(ValueError):
            mapping.encode(0, 8)

    def test_bad_construction_rejected(self):
        with pytest.raises(ValueError):
            RankAddressMap(0, 8)
        with pytest.raises(ValueError):
            RankAddressMap(2, 0)
        with pytest.raises(ValueError):
            RankAddressMap(2, 8, policy="diagonal")


class TestChannelAddressMap:
    def test_interleaved_alternates_ranks(self):
        mapping = ChannelAddressMap(2, 4, 16)
        assert mapping.decode(0)[0] == 0
        assert mapping.decode(1)[0] == 1
        assert mapping.decode(2)[0] == 0
        # the per-rank remainder decodes through the inner rank map
        rank, bank, row = mapping.decode(2)
        assert (bank, row) == mapping.rank_map.decode(1)

    def test_rank_major_gives_each_rank_a_contiguous_span(self):
        mapping = ChannelAddressMap(2, 4, 16, policy="rank-major")
        span = mapping.rank_map.num_addresses
        assert mapping.decode(0)[0] == 0
        assert mapping.decode(span - 1)[0] == 0
        assert mapping.decode(span)[0] == 1

    @pytest.mark.parametrize("policy", ChannelAddressMap.POLICIES)
    @pytest.mark.parametrize("bank_policy", RankAddressMap.POLICIES)
    def test_round_trip_bijection(self, policy, bank_policy):
        mapping = ChannelAddressMap(
            3, 2, 8, policy=policy, bank_policy=bank_policy
        )
        decoded = {mapping.decode(a) for a in range(mapping.num_addresses)}
        assert len(decoded) == mapping.num_addresses == 48
        for address in range(mapping.num_addresses):
            assert mapping.encode(*mapping.decode(address)) == address

    def test_out_of_range_rejected(self):
        mapping = ChannelAddressMap(2, 2, 8)
        with pytest.raises(ValueError):
            mapping.decode(mapping.num_addresses)
        with pytest.raises(ValueError):
            mapping.encode(2, 0, 0)
        with pytest.raises(ValueError):
            mapping.encode(0, 2, 0)

    def test_bad_construction_rejected(self):
        with pytest.raises(ValueError):
            ChannelAddressMap(0, 2, 8)
        with pytest.raises(ValueError):
            ChannelAddressMap(2, 2, 8, policy="diagonal")
