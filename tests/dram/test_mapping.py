"""Tests for logical/physical row mapping."""

import pytest

from repro.dram.mapping import RowMapping, ScrambledRowMapping


class TestIdentityMapping:
    def test_round_trip(self):
        mapping = RowMapping(1024)
        for row in (0, 1, 511, 1023):
            assert mapping.to_logical(mapping.to_physical(row)) == row

    def test_identity(self):
        mapping = RowMapping(16)
        assert all(mapping.to_physical(r) == r for r in range(16))

    def test_out_of_range_rejected(self):
        mapping = RowMapping(16)
        with pytest.raises(ValueError):
            mapping.to_physical(16)
        with pytest.raises(ValueError):
            mapping.to_physical(-1)

    def test_zero_rows_rejected(self):
        with pytest.raises(ValueError):
            RowMapping(0)


class TestScrambledMapping:
    def test_is_bijection(self):
        mapping = ScrambledRowMapping(997)
        images = {mapping.to_physical(r) for r in range(997)}
        assert len(images) == 997

    def test_round_trip(self):
        mapping = ScrambledRowMapping(1 << 12)
        for row in (0, 7, 100, 4095):
            assert mapping.to_logical(mapping.to_physical(row)) == row

    def test_breaks_adjacency(self):
        """The point of the model: logical neighbours are generally not
        physical neighbours (Section II-D)."""
        mapping = ScrambledRowMapping(1 << 12)
        adjacent = sum(
            1
            for r in range(1000)
            if abs(mapping.to_physical(r) - mapping.to_physical(r + 1)) == 1
        )
        assert adjacent < 10

    def test_different_keys_differ(self):
        a = ScrambledRowMapping(1 << 10, key=1)
        b = ScrambledRowMapping(1 << 10, key=999999)
        assert any(a.to_physical(r) != b.to_physical(r) for r in range(100))
