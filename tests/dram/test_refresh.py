"""Tests for refresh postponement semantics (paper Section VI)."""

import pytest

from repro.dram.refresh import RefreshScheduler


class TestTimelyRefresh:
    def test_every_tick_refreshes(self):
        scheduler = RefreshScheduler()
        for _ in range(10):
            event = scheduler.tick()
            assert event is not None
            assert event.count == 1
        assert scheduler.total_refreshes == 10


class TestPostponement:
    def test_postpone_returns_none(self):
        scheduler = RefreshScheduler()
        assert scheduler.tick(want_postpone=True) is None

    def test_ddr5_ceiling_of_four(self):
        """At most 4 postponed; the 5th tick must flush all 5."""
        scheduler = RefreshScheduler()
        for _ in range(4):
            assert scheduler.tick(want_postpone=True) is None
        event = scheduler.tick(want_postpone=True)
        assert event is not None
        assert event.count == 5

    def test_partial_batch(self):
        scheduler = RefreshScheduler()
        scheduler.tick(want_postpone=True)
        scheduler.tick(want_postpone=True)
        event = scheduler.tick()
        assert event.count == 3

    def test_debt_resets_after_batch(self):
        scheduler = RefreshScheduler()
        for _ in range(4):
            scheduler.tick(want_postpone=True)
        scheduler.tick()
        assert scheduler.postponed == 0
        event = scheduler.tick()
        assert event.count == 1

    def test_total_refreshes_conserved(self):
        """Postponement delays refreshes but never drops them."""
        scheduler = RefreshScheduler()
        pattern = [True, True, False, True, True, True, True, False, False]
        for want in pattern:
            scheduler.tick(want_postpone=want)
        scheduler.flush()
        assert scheduler.total_refreshes == len(pattern)

    def test_flush_empty_is_noop(self):
        scheduler = RefreshScheduler()
        scheduler.tick()
        assert scheduler.flush() is None

    def test_custom_ceiling(self):
        scheduler = RefreshScheduler(max_postponed=2)
        scheduler.tick(want_postpone=True)
        scheduler.tick(want_postpone=True)
        event = scheduler.tick(want_postpone=True)
        assert event.count == 3

    def test_zero_ceiling_forbids_postponement(self):
        scheduler = RefreshScheduler(max_postponed=0)
        event = scheduler.tick(want_postpone=True)
        assert event is not None

    def test_negative_ceiling_rejected(self):
        with pytest.raises(ValueError):
            RefreshScheduler(max_postponed=-1)
