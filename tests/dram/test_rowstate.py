"""Tests for the row-disturbance oracle (the Rowhammer failure model)."""

import pytest

from repro.dram.rowstate import RowDisturbanceModel


def make_model(trh=10, rows=100, blast_radius=1):
    return RowDisturbanceModel(num_rows=rows, trh=trh, blast_radius=blast_radius)


class TestActivation:
    def test_disturbs_both_neighbours(self):
        model = make_model()
        model.activate(50)
        assert model.disturbance(49) == 1.0
        assert model.disturbance(51) == 1.0

    def test_does_not_disturb_self(self):
        model = make_model()
        model.activate(50)
        assert model.disturbance(50) == 0.0

    def test_activation_restores_own_row(self):
        """An ACT is a full row cycle: it refreshes the activated row."""
        model = make_model()
        model.activate(49)  # disturbs 50
        assert model.disturbance(50) == 1.0
        model.activate(50)  # activating 50 restores it
        assert model.disturbance(50) == 0.0

    def test_edge_rows_have_one_neighbour(self):
        model = make_model()
        model.activate(0)
        assert model.disturbance(1) == 1.0
        # No row -1 to disturb; no crash either.

    def test_blast_radius_two(self):
        model = make_model(blast_radius=2)
        model.activate(50)
        for victim in (48, 49, 51, 52):
            assert model.disturbance(victim) == 1.0

    def test_decay_weights_distance(self):
        model = RowDisturbanceModel(num_rows=100, trh=10, blast_radius=2, decay=0.5)
        model.activate(50)
        assert model.disturbance(49) == 1.0
        assert model.disturbance(48) == 0.5


class TestFlipDetection:
    def test_flip_at_threshold(self):
        model = make_model(trh=3)
        for _ in range(3):
            model.activate(50)
        assert model.any_flip
        assert model.flips[0].row in (49, 51)

    def test_no_flip_below_threshold(self):
        model = make_model(trh=3)
        for _ in range(2):
            model.activate(50)
        assert not model.any_flip

    def test_flip_records_each_row_once(self):
        model = make_model(trh=2)
        for _ in range(10):
            model.activate(50)
        flipped_rows = [flip.row for flip in model.flips]
        assert len(flipped_rows) == len(set(flipped_rows))

    def test_refresh_resets_disturbance(self):
        model = make_model(trh=3)
        model.activate(50)
        model.activate(50)
        model.refresh_row(51)
        model.activate(50)
        assert model.disturbance(51) == 1.0
        assert not any(flip.row == 51 for flip in model.flips)


class TestMitigation:
    def test_mitigate_refreshes_both_victims(self):
        model = make_model()
        model.activate(50)
        refreshed = model.mitigate(50)
        assert sorted(refreshed) == [49, 51]
        assert model.disturbance(49) == 0.0
        assert model.disturbance(51) == 0.0

    def test_mitigation_disturbs_distance_two(self):
        """The transitive (Half-Double) channel: victim refreshes are
        silent activations disturbing rows two away."""
        model = make_model()
        model.mitigate(50)
        assert model.disturbance(48) == 1.0
        assert model.disturbance(52) == 1.0

    def test_mitigation_self_consistent(self):
        # The two victim refreshes must not leave residue on each other
        # or on the refreshed rows themselves.
        model = make_model()
        model.mitigate(50)
        assert model.disturbance(49) == 0.0
        assert model.disturbance(51) == 0.0

    def test_repeated_mitigation_accumulates_transitively(self):
        model = make_model(trh=5)
        for _ in range(5):
            model.mitigate(50)
        assert any(flip.row in (48, 52) for flip in model.flips)


class TestQueries:
    def test_max_disturbance_empty(self):
        assert make_model().max_disturbance() == 0.0

    def test_most_disturbed_row(self):
        model = make_model()
        model.activate(10)
        model.activate(10)
        model.activate(20)
        assert model.most_disturbed_row() in (9, 11)

    def test_auto_refresh_all_clears(self):
        model = make_model()
        model.activate(10)
        model.auto_refresh_all()
        assert model.max_disturbance() == 0.0


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_rows": 0, "trh": 10},
            {"num_rows": 10, "trh": 0},
            {"num_rows": 10, "trh": 10, "blast_radius": 0},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            RowDisturbanceModel(**kwargs)
