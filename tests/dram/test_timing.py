"""Tests for DDR5 timing parameters (paper Table I, Appendix A)."""

import math

import pytest

from repro.dram.timing import (
    DDR5Timing,
    DEFAULT_TIMING,
    SPEED_BINS,
    maxact_range,
    timing_for_bin,
)


class TestDefaultTiming:
    def test_table1_refresh_window(self):
        assert DEFAULT_TIMING.t_refw_ms == 32.0

    def test_table1_refi(self):
        assert DEFAULT_TIMING.t_refi_ns == 3900.0

    def test_table1_rfc(self):
        assert DEFAULT_TIMING.t_rfc_ns == 410.0

    def test_table1_rc(self):
        assert DEFAULT_TIMING.t_rc_ns == 48.0

    def test_table1_max_act_is_73(self):
        """The headline M = (tREFI - tRFC) / tRC = 73."""
        assert DEFAULT_TIMING.max_act == 73

    def test_refi_per_refw_near_8192(self):
        # 32 ms / 3.9 us = 8205; the paper rounds to the 8192 the
        # auto-refresh machinery uses.
        assert abs(DEFAULT_TIMING.refi_per_refw - 8192) < 32

    def test_acts_per_refw(self):
        assert DEFAULT_TIMING.acts_per_refw == (
            DEFAULT_TIMING.max_act * DEFAULT_TIMING.refi_per_refw
        )

    def test_refw_ns_conversion(self):
        assert DEFAULT_TIMING.t_refw_ns == 32.0 * 1e6


class TestWithMaxAct:
    @pytest.mark.parametrize("target", [65, 70, 73, 77, 80])
    def test_round_trip(self, target):
        adjusted = DEFAULT_TIMING.with_max_act(target)
        assert adjusted.max_act == target

    def test_adjusts_trc_only(self):
        adjusted = DEFAULT_TIMING.with_max_act(65)
        assert adjusted.t_refi_ns == DEFAULT_TIMING.t_refi_ns
        assert adjusted.t_rfc_ns == DEFAULT_TIMING.t_rfc_ns
        assert adjusted.t_rc_ns != DEFAULT_TIMING.t_rc_ns

    def test_is_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_TIMING.t_rc_ns = 50.0


class TestSpeedBins:
    def test_all_bins_resolve(self):
        for name in SPEED_BINS:
            timing = timing_for_bin(name)
            assert timing.max_act > 0

    def test_unknown_bin_raises(self):
        with pytest.raises(KeyError):
            timing_for_bin("DDR5-9999Z")

    def test_maxact_range_within_appendix_a(self):
        """Appendix A: MaxACT spans ~67-78 over the DDR5 envelope."""
        lo, hi = maxact_range()
        assert 65 <= lo <= hi <= 80
        assert hi > lo

    def test_default_bin_matches_paper(self):
        assert timing_for_bin("DDR5-5200B").max_act == 73
