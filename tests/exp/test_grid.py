"""Grid expansion, fingerprints, and seed derivation."""

import pytest

from repro.exp import (
    AttackSpec,
    ExperimentGrid,
    ExperimentPoint,
    PointConfig,
    TrackerSpec,
)
from repro.sim.seeding import canonical_json, stable_seed


def small_grid():
    return ExperimentGrid(
        trackers=[TrackerSpec.of("mint"), TrackerSpec.of("para")],
        attacks=[AttackSpec.of("single-sided"), AttackSpec.of("pattern2")],
        configs=[PointConfig(trh=100, intervals=20)],
    )


class TestGridExpansion:
    def test_cross_product_size(self):
        grid = small_grid()
        assert len(grid) == 4
        assert len(grid.points()) == 4

    def test_row_major_order(self):
        labels = [
            (p.tracker.name, p.attack.name) for p in small_grid().points()
        ]
        assert labels == [
            ("mint", "single-sided"),
            ("mint", "pattern2"),
            ("para", "single-sided"),
            ("para", "pattern2"),
        ]

    def test_payload_round_trip(self):
        for point in small_grid().points():
            clone = ExperimentPoint.from_payload(point.to_payload())
            assert clone == point
            assert clone.fingerprint(7) == point.fingerprint(7)


class TestFingerprints:
    def test_stable_across_param_order(self):
        a = TrackerSpec.of("mint", transitive=False, dmq=True)
        b = TrackerSpec.from_payload(
            {"name": "mint", "params": {"transitive": False}, "dmq": True}
        )
        assert a == b

    def test_distinct_per_coordinate(self):
        config = PointConfig(trh=100, intervals=20)
        base = ExperimentPoint(
            TrackerSpec.of("mint"), AttackSpec.of("single-sided"), config
        )
        variants = [
            ExperimentPoint(
                TrackerSpec.of("para"), AttackSpec.of("single-sided"), config
            ),
            ExperimentPoint(
                TrackerSpec.of("mint"), AttackSpec.of("pattern2"), config
            ),
            ExperimentPoint(
                TrackerSpec.of("mint"),
                AttackSpec.of("single-sided"),
                PointConfig(trh=101, intervals=20),
            ),
        ]
        prints = {point.fingerprint(3) for point in variants}
        prints.add(base.fingerprint(3))
        assert len(prints) == 4

    def test_base_seed_changes_fingerprint_and_seed(self):
        point = small_grid().points()[0]
        assert point.fingerprint(1) != point.fingerprint(2)
        assert point.task_seed(1) != point.task_seed(2)

    def test_dmq_depth_in_identity(self):
        config = PointConfig()
        attack = AttackSpec.of("decoy")
        shallow = ExperimentPoint(
            TrackerSpec.of("mint", dmq=True, dmq_depth=1), attack, config
        )
        deep = ExperimentPoint(
            TrackerSpec.of("mint", dmq=True, dmq_depth=4), attack, config
        )
        assert shallow.fingerprint(0) != deep.fingerprint(0)


class TestExtraPoints:
    def test_extra_points_prepended(self):
        grid = small_grid()
        extra = ExperimentPoint(
            TrackerSpec.of("none"),
            AttackSpec.of("decoy"),
            PointConfig(trh=5, intervals=10),
        )
        grid.extra_points.append(extra)
        assert len(grid) == 5
        assert grid.points()[0] == extra

    def test_postponement_preset_is_exactly_the_study(self):
        from repro.exp.presets import postponement_grid

        grid = postponement_grid(depths=(1, 2))
        labels = [(p.tracker.label, p.attack.name) for p in grid.points()]
        assert labels == [
            ("mint", "decoy"),
            ("mint+dmq4", "decoy"),
            ("mint(transitive=False)+dmq1", "decoy-multi"),
            ("mint(transitive=False)+dmq2", "decoy-multi"),
        ]

    def test_benchmark_grid_validates_points(self):
        from repro.exp.presets import scaled_benchmark_grid

        assert len(scaled_benchmark_grid(points=8, windows=1)) == 8
        with pytest.raises(ValueError):
            scaled_benchmark_grid(points=3)
        with pytest.raises(ValueError):
            scaled_benchmark_grid(points=10)


class TestLabels:
    def test_plain(self):
        assert TrackerSpec.of("mint").label == "mint"

    def test_params_and_dmq(self):
        spec = TrackerSpec.of("mint", dmq=True, dmq_depth=2, transitive=False)
        assert spec.label == "mint(transitive=False)+dmq2"


class TestSeeding:
    def test_stable_seed_is_deterministic(self):
        assert stable_seed("a", 1, {"x": 2}) == stable_seed("a", 1, {"x": 2})

    def test_stable_seed_varies(self):
        assert stable_seed("a", 1) != stable_seed("a", 2)

    def test_canonical_json_sorts_keys(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_canonical_json_rejects_exotic_types(self):
        with pytest.raises(TypeError):
            canonical_json(object())


class TestSchemaV4:
    """The channel bump: num_ranks knob, tolerant v3 loader shim."""

    #: Verbatim v3-era config payload: the thirteen pre-channel knobs,
    #: no ``num_ranks`` key.
    V3_CONFIG = {
        "trh": 300.0,
        "intervals": 120,
        "max_act": 73,
        "base_row": 1000,
        "num_rows": 131072,
        "blast_radius": 1,
        "allow_postponement": False,
        "max_postponed": 4,
        "refi_per_refw": 8192,
        "scaled_timing": False,
        "num_banks": 2,
        "concurrent_banks": None,
        "vectorized": None,
    }

    def test_schema_version_bumped(self):
        from repro.exp import SCHEMA_VERSION

        assert SCHEMA_VERSION == 4

    def test_v3_config_payload_loads_with_default_ranks(self):
        config = PointConfig.from_payload(self.V3_CONFIG)
        assert config.num_ranks == 1
        assert config.num_banks == 2
        # and round-trips forward with the new knob materialized
        assert config.to_payload()["num_ranks"] == 1

    def test_unknown_future_keys_are_ignored(self):
        payload = {**self.V3_CONFIG, "num_channels": 2}
        config = PointConfig.from_payload(payload)
        assert not hasattr(config, "num_channels")

    def test_num_ranks_is_a_grid_knob(self):
        point = ExperimentPoint(
            TrackerSpec.of("mint"),
            AttackSpec.of("rank-synchronized"),
            PointConfig(trh=100, intervals=20, num_ranks=2),
        )
        scenario = point.scenario(base_seed=3)
        assert scenario.num_ranks == 2
        assert point.fingerprint(3) != ExperimentPoint(
            point.tracker, point.attack,
            PointConfig(trh=100, intervals=20, num_ranks=1),
        ).fingerprint(3)
