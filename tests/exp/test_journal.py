"""Run-journal replay: begin/shard/finish lifecycle and crash tails."""

import json

from repro.exp import ResultStore, RunJournal, journal_for_store


def journal(tmp_path):
    return RunJournal(tmp_path / "store.json.journal")


class TestLifecycle:
    def test_missing_journal_loads_none(self, tmp_path):
        assert journal(tmp_path).load() is None

    def test_begin_records_planned(self, tmp_path):
        log = journal(tmp_path)
        log.begin("run-1", ["bb", "aa"])
        state = log.load()
        assert state.run_key == "run-1"
        assert state.planned == {"aa", "bb"}
        assert state.remaining == {"aa", "bb"}
        assert state.interrupted

    def test_shard_lifecycle(self, tmp_path):
        log = journal(tmp_path)
        log.begin("run-1", ["aa", "bb", "cc"])
        log.shard_started("s1", ("aa", "bb"))
        log.shard_started("s2", ("cc",))
        log.shard_done("s1", ("aa", "bb"), wall_seconds=0.5, exec_seconds=0.4)
        state = log.load()
        assert state.done == {"aa", "bb"}
        assert state.running == {"cc"}
        assert state.remaining == {"cc"}
        assert state.shards_done == 1
        assert state.interrupted

    def test_finish_completes_the_run(self, tmp_path):
        log = journal(tmp_path)
        log.begin("run-1", ["aa"])
        log.shard_done("s1", ("aa",), wall_seconds=0.1, exec_seconds=0.1)
        log.finish("run-1")
        state = log.load()
        assert state.finished
        assert not state.interrupted
        assert state.remaining == set()

    def test_begin_truncates_previous_run(self, tmp_path):
        log = journal(tmp_path)
        log.begin("run-1", ["aa"])
        log.finish("run-1")
        log.begin("run-2", ["bb"])
        state = log.load()
        assert state.run_key == "run-2"
        assert not state.finished
        assert state.planned == {"bb"}

    def test_clear_removes_the_file(self, tmp_path):
        log = journal(tmp_path)
        log.begin("run-1", ["aa"])
        log.clear()
        assert log.load() is None
        log.clear()  # idempotent


class TestCrashTolerance:
    def test_truncated_final_line_ignored(self, tmp_path):
        log = journal(tmp_path)
        log.begin("run-1", ["aa", "bb"])
        log.shard_done("s1", ("aa",), wall_seconds=0.1, exec_seconds=0.1)
        with log.path.open("a") as handle:
            handle.write('{"event": "shard-done", "keys": ["b')
        state = log.load()
        assert state.done == {"aa"}
        assert state.shards_done == 1

    def test_foreign_finish_does_not_complete(self, tmp_path):
        """A stale finish line from another run key is ignored."""
        log = journal(tmp_path)
        log.begin("run-2", ["aa"])
        log.finish("run-1")
        assert log.load().interrupted

    def test_journal_lines_are_json(self, tmp_path):
        log = journal(tmp_path)
        log.begin("run-1", ["aa"])
        log.shard_started("s1", ("aa",))
        log.shard_done("s1", ("aa",), wall_seconds=0.25, exec_seconds=0.2)
        log.finish("run-1")
        events = [
            json.loads(line) for line in log.path.read_text().splitlines()
        ]
        assert [event["event"] for event in events] == [
            "begin", "shard-start", "shard-done", "finish",
        ]
        assert events[2]["wall_seconds"] == 0.25


class TestStoreBinding:
    def test_journal_for_store_sits_next_to_it(self, tmp_path):
        store = ResultStore(tmp_path / "sweep.json")
        log = journal_for_store(store)
        assert log.path == tmp_path / "sweep.json.journal"

    def test_in_memory_store_has_no_journal(self):
        assert journal_for_store(ResultStore()) is None
        assert journal_for_store(None) is None
