"""Rank-level experiment points: determinism, metrics shape, CLI."""

import json

from repro.cli import main
from repro.exp import (
    AttackSpec,
    ExperimentGrid,
    PointConfig,
    TrackerSpec,
    preset_grid,
    rank_shootout_grid,
    run_grid,
    run_point,
)

BASE_SEED = 42


def rank_fast_grid():
    """A 4-point rank grid in the scaled regime: milliseconds per point."""
    return ExperimentGrid(
        trackers=[TrackerSpec.of("mint"), TrackerSpec.of("para")],
        attacks=[
            AttackSpec.of("bank-interleaved", base="single-sided"),
            AttackSpec.of("rank-stripe", sides=6),
        ],
        configs=[
            PointConfig(
                trh=60.0,
                intervals=64,
                max_act=8,
                num_rows=1024,
                refi_per_refw=64,
                scaled_timing=True,
                num_banks=4,
            )
        ],
    )


def canonical(report) -> str:
    return json.dumps(
        [result.to_payload() for result in report.results], sort_keys=True
    )


class TestRankDeterminism:
    def test_bank_interleaved_one_vs_four_workers_bit_identical(self):
        """Rank points keep the runner's fan-out guarantee: worker
        count never changes bank-interleaved results."""
        serial = run_grid(rank_fast_grid(), base_seed=BASE_SEED, n_workers=1)
        pooled = run_grid(rank_fast_grid(), base_seed=BASE_SEED, n_workers=4)
        assert serial.total == pooled.total == 4
        assert canonical(serial) == canonical(pooled)

    def test_repeat_run_identical(self):
        first = run_grid(rank_fast_grid(), base_seed=BASE_SEED, n_workers=2)
        second = run_grid(rank_fast_grid(), base_seed=BASE_SEED, n_workers=2)
        assert canonical(first) == canonical(second)

    def test_bank_count_changes_fingerprint(self):
        point = rank_fast_grid().points()[0]
        narrower = rank_fast_grid()
        narrower.configs[0] = PointConfig(
            **{**narrower.configs[0].to_payload(), "num_banks": 2}
        )
        assert (
            point.fingerprint(BASE_SEED)
            != narrower.points()[0].fingerprint(BASE_SEED)
        )


class TestRankMetrics:
    def test_per_bank_metrics_shape(self):
        result = run_point(rank_fast_grid().points()[0], base_seed=BASE_SEED)
        assert result.num_banks == 4
        per_bank = result.per_bank_metrics
        assert len(per_bank) == 4
        assert result.metrics["demand_acts"] == sum(
            bank["demand_acts"] for bank in per_bank
        )
        assert result.metrics["failed"] == bool(
            result.metrics["failed_banks"]
        )

    def test_max_unmitigated_merged_across_banks(self):
        """The Table-IV accessor works on rank points: the top-level map
        is the row-wise maximum over the banks."""
        result = run_point(rank_fast_grid().points()[0], base_seed=BASE_SEED)
        merged = result.metrics["max_unmitigated"]
        assert merged
        for row, value in merged.items():
            assert value == max(
                bank["max_unmitigated"].get(row, 0)
                for bank in result.per_bank_metrics
            )
            assert result.max_unmitigated(int(row)) == value

    def test_single_bank_points_keep_flat_metrics(self):
        grid = rank_fast_grid()
        grid.attacks = [AttackSpec.of("single-sided")]
        grid.configs[0] = PointConfig(
            **{**grid.configs[0].to_payload(), "num_banks": 1}
        )
        result = run_point(grid.points()[0], base_seed=BASE_SEED)
        assert result.num_banks == 1
        assert result.per_bank_metrics == []
        assert "per_bank" not in result.metrics

    def test_rank_attack_on_single_bank_config_still_ranks(self):
        """A rank-registry attack forces the rank engine even when the
        config says one bank."""
        grid = rank_fast_grid()
        grid.configs[0] = PointConfig(
            **{**grid.configs[0].to_payload(), "num_banks": 1}
        )
        result = run_point(grid.points()[0], base_seed=BASE_SEED)
        assert result.num_banks == 1
        assert len(result.per_bank_metrics) == 1


class TestRankPreset:
    def test_rank_shootout_grid_shape(self):
        grid = rank_shootout_grid()
        assert len(grid) == 4 * 4 * 2
        banks = {config.num_banks for config in grid.configs}
        assert banks == {2, 4}

    def test_preset_kwargs_forwarded(self):
        grid = preset_grid("rank-shootout", banks=(8,))
        assert {config.num_banks for config in grid.configs} == {8}

    def test_unknown_preset_kwarg_raises_typeerror(self):
        import pytest

        with pytest.raises(TypeError):
            preset_grid("rank-shootout", bogus=1)


class TestRankCli:
    def test_exp_run_with_banks_prints_per_bank_lines(self, capsys):
        code = main([
            "exp", "run",
            "--trackers", "mint",
            "--attacks", "rank-stripe",
            "--banks", "2",
            "--intervals", "40",
            "--trh", "1000000",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "rank-stripe@2b" in out
        assert "bank 0:" in out and "bank 1:" in out

    def test_banks_rejected_for_non_rank_preset(self, capsys):
        code = main(["exp", "run", "--preset", "shootout", "--banks", "4"])
        assert code == 2
        assert "rank-shootout" in capsys.readouterr().out

    def test_invalid_point_is_a_clean_usage_error(self, capsys):
        """cross-bank-decoy needs >= 2 banks; without --banks the point
        is invalid and must exit 2 with the generator's message, not a
        traceback."""
        code = main([
            "exp", "run",
            "--trackers", "mint",
            "--attacks", "cross-bank-decoy",
            "--intervals", "20",
        ])
        assert code == 2
        assert "at least 2 banks" in capsys.readouterr().out

    def test_banks_above_tfaw_ceiling_is_a_clean_usage_error(self, capsys):
        code = main([
            "exp", "run",
            "--trackers", "mint",
            "--attacks", "cross-bank-decoy",
            "--banks", "24",
            "--intervals", "20",
        ])
        assert code == 2
        assert "tFAW" in capsys.readouterr().out
