"""Determinism, caching, and fan-out behaviour of the grid runner."""

import json

from repro.exp import (
    AttackSpec,
    ExperimentGrid,
    PointConfig,
    ResultStore,
    TrackerSpec,
    run_grid,
    run_point,
)

BASE_SEED = 42


def fast_grid(trh=60.0):
    """A 4-point grid in the scaled regime: ~milliseconds per point."""
    return ExperimentGrid(
        trackers=[TrackerSpec.of("mint"), TrackerSpec.of("para")],
        attacks=[
            AttackSpec.of("single-sided"),
            AttackSpec.of("blacksmith", count=4),
        ],
        configs=[
            PointConfig(
                trh=trh,
                intervals=64,
                max_act=8,
                num_rows=1024,
                refi_per_refw=64,
                scaled_timing=True,
            )
        ],
    )


def canonical(report) -> str:
    return json.dumps(
        [result.to_payload() for result in report.results], sort_keys=True
    )


class TestDeterminism:
    def test_one_vs_four_workers_bit_identical(self):
        """The headline guarantee: worker count never changes results."""
        serial = run_grid(fast_grid(), base_seed=BASE_SEED, n_workers=1)
        pooled = run_grid(fast_grid(), base_seed=BASE_SEED, n_workers=4)
        assert serial.total == pooled.total == 4
        assert canonical(serial) == canonical(pooled)

    def test_repeat_run_identical(self):
        first = run_grid(fast_grid(), base_seed=BASE_SEED, n_workers=2)
        second = run_grid(fast_grid(), base_seed=BASE_SEED, n_workers=2)
        assert canonical(first) == canonical(second)

    def test_base_seed_changes_randomised_outcomes(self):
        a = run_grid(fast_grid(), base_seed=1, n_workers=1)
        b = run_grid(fast_grid(), base_seed=2, n_workers=1)
        assert canonical(a) != canonical(b)

    def test_run_point_matches_grid(self):
        grid = fast_grid()
        report = run_grid(grid, base_seed=BASE_SEED, n_workers=1)
        inline = run_point(grid.points()[0], base_seed=BASE_SEED)
        assert inline.to_payload() == report.results[0].to_payload()

    def test_results_in_grid_order(self):
        report = run_grid(fast_grid(), base_seed=BASE_SEED, n_workers=4)
        assert [(r.tracker, r.attack) for r in report.results] == [
            ("mint", "single-sided"),
            ("mint", "blacksmith"),
            ("para", "single-sided"),
            ("para", "blacksmith"),
        ]


class TestCaching:
    def test_second_run_all_cached(self, tmp_path):
        path = tmp_path / "store.json"
        first = run_grid(
            fast_grid(), base_seed=BASE_SEED, n_workers=1,
            store=ResultStore(path),
        )
        assert (first.executed, first.cached) == (4, 0)
        second = run_grid(
            fast_grid(), base_seed=BASE_SEED, n_workers=1,
            store=ResultStore(path),
        )
        assert (second.executed, second.cached) == (0, 4)
        assert canonical(first) == canonical(second)

    def test_config_change_invalidates(self, tmp_path):
        path = tmp_path / "store.json"
        run_grid(
            fast_grid(trh=60.0), base_seed=BASE_SEED, n_workers=1,
            store=ResultStore(path),
        )
        changed = run_grid(
            fast_grid(trh=50.0), base_seed=BASE_SEED, n_workers=1,
            store=ResultStore(path),
        )
        assert (changed.executed, changed.cached) == (4, 0)

    def test_base_seed_invalidates(self, tmp_path):
        path = tmp_path / "store.json"
        run_grid(
            fast_grid(), base_seed=1, n_workers=1, store=ResultStore(path)
        )
        reseeded = run_grid(
            fast_grid(), base_seed=2, n_workers=1, store=ResultStore(path)
        )
        assert (reseeded.executed, reseeded.cached) == (4, 0)

    def test_grid_growth_is_incremental(self, tmp_path):
        path = tmp_path / "store.json"
        run_grid(
            fast_grid(), base_seed=BASE_SEED, n_workers=1,
            store=ResultStore(path),
        )
        grown = fast_grid()
        grown.trackers.append(TrackerSpec.of("mithril"))
        report = run_grid(
            grown, base_seed=BASE_SEED, n_workers=1, store=ResultStore(path)
        )
        assert (report.executed, report.cached) == (2, 4)

    def test_cached_results_skip_execution_not_reporting(self, tmp_path):
        path = tmp_path / "store.json"
        run_grid(
            fast_grid(), base_seed=BASE_SEED, n_workers=1,
            store=ResultStore(path),
        )
        report = run_grid(
            fast_grid(), base_seed=BASE_SEED, n_workers=1,
            store=ResultStore(path),
        )
        assert report.total == 4
        assert all(result is not None for result in report.results)


class TestResultContents:
    def test_metrics_and_stats_populated(self):
        report = run_grid(fast_grid(), base_seed=BASE_SEED, n_workers=1)
        for result in report.results:
            assert result.metrics["demand_acts"] > 0
            assert result.metrics["refreshes"] > 0
            assert "storage_bits" in result.tracker_stats
            assert result.key
            assert result.seed

    def test_unprotected_grid_detects_flips(self):
        grid = ExperimentGrid(
            trackers=[TrackerSpec.of("none")],
            attacks=[AttackSpec.of("single-sided")],
            configs=[
                PointConfig(
                    trh=30,
                    intervals=64,
                    max_act=8,
                    num_rows=1024,
                    refi_per_refw=64,
                    scaled_timing=True,
                )
            ],
        )
        report = run_grid(grid, base_seed=BASE_SEED, n_workers=1)
        assert report.results[0].failed
        assert report.results[0].metrics["flips"]
