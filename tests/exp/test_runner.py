"""Determinism, caching, crash/resume, and fan-out behaviour of the
sharded grid scheduler."""

import json

import pytest

import repro.parallel
from repro.exp import (
    AttackSpec,
    ExperimentGrid,
    PointConfig,
    ResultStore,
    TrackerSpec,
    journal_for_store,
    run_grid,
    run_point,
)
from repro.exp.runner import _InjectedCrash

BASE_SEED = 42


def fast_grid(trh=60.0):
    """A 4-point grid in the scaled regime: ~milliseconds per point."""
    return ExperimentGrid(
        trackers=[TrackerSpec.of("mint"), TrackerSpec.of("para")],
        attacks=[
            AttackSpec.of("single-sided"),
            AttackSpec.of("blacksmith", count=4),
        ],
        configs=[
            PointConfig(
                trh=trh,
                intervals=64,
                max_act=8,
                num_rows=1024,
                refi_per_refw=64,
                scaled_timing=True,
            )
        ],
    )


def canonical(report) -> str:
    return json.dumps(
        [result.to_payload() for result in report.results], sort_keys=True
    )


class TestDeterminism:
    def test_one_vs_four_workers_bit_identical(self):
        """The headline guarantee: worker count never changes results."""
        serial = run_grid(fast_grid(), base_seed=BASE_SEED, n_workers=1)
        pooled = run_grid(fast_grid(), base_seed=BASE_SEED, n_workers=4)
        assert serial.total == pooled.total == 4
        assert canonical(serial) == canonical(pooled)

    def test_repeat_run_identical(self):
        first = run_grid(fast_grid(), base_seed=BASE_SEED, n_workers=2)
        second = run_grid(fast_grid(), base_seed=BASE_SEED, n_workers=2)
        assert canonical(first) == canonical(second)

    def test_base_seed_changes_randomised_outcomes(self):
        a = run_grid(fast_grid(), base_seed=1, n_workers=1)
        b = run_grid(fast_grid(), base_seed=2, n_workers=1)
        assert canonical(a) != canonical(b)

    def test_run_point_matches_grid(self):
        grid = fast_grid()
        report = run_grid(grid, base_seed=BASE_SEED, n_workers=1)
        inline = run_point(grid.points()[0], base_seed=BASE_SEED)
        assert inline.to_payload() == report.results[0].to_payload()

    def test_results_in_grid_order(self):
        report = run_grid(fast_grid(), base_seed=BASE_SEED, n_workers=4)
        assert [(r.tracker, r.attack) for r in report.results] == [
            ("mint", "single-sided"),
            ("mint", "blacksmith"),
            ("para", "single-sided"),
            ("para", "blacksmith"),
        ]


class TestCaching:
    def test_second_run_all_cached(self, tmp_path):
        path = tmp_path / "store.json"
        first = run_grid(
            fast_grid(), base_seed=BASE_SEED, n_workers=1,
            store=ResultStore(path),
        )
        assert (first.executed, first.cached) == (4, 0)
        second = run_grid(
            fast_grid(), base_seed=BASE_SEED, n_workers=1,
            store=ResultStore(path),
        )
        assert (second.executed, second.cached) == (0, 4)
        assert canonical(first) == canonical(second)

    def test_config_change_invalidates(self, tmp_path):
        path = tmp_path / "store.json"
        run_grid(
            fast_grid(trh=60.0), base_seed=BASE_SEED, n_workers=1,
            store=ResultStore(path),
        )
        changed = run_grid(
            fast_grid(trh=50.0), base_seed=BASE_SEED, n_workers=1,
            store=ResultStore(path),
        )
        assert (changed.executed, changed.cached) == (4, 0)

    def test_base_seed_invalidates(self, tmp_path):
        path = tmp_path / "store.json"
        run_grid(
            fast_grid(), base_seed=1, n_workers=1, store=ResultStore(path)
        )
        reseeded = run_grid(
            fast_grid(), base_seed=2, n_workers=1, store=ResultStore(path)
        )
        assert (reseeded.executed, reseeded.cached) == (4, 0)

    def test_grid_growth_is_incremental(self, tmp_path):
        path = tmp_path / "store.json"
        run_grid(
            fast_grid(), base_seed=BASE_SEED, n_workers=1,
            store=ResultStore(path),
        )
        grown = fast_grid()
        grown.trackers.append(TrackerSpec.of("mithril"))
        report = run_grid(
            grown, base_seed=BASE_SEED, n_workers=1, store=ResultStore(path)
        )
        assert (report.executed, report.cached) == (2, 4)

    def test_cached_results_skip_execution_not_reporting(self, tmp_path):
        path = tmp_path / "store.json"
        run_grid(
            fast_grid(), base_seed=BASE_SEED, n_workers=1,
            store=ResultStore(path),
        )
        report = run_grid(
            fast_grid(), base_seed=BASE_SEED, n_workers=1,
            store=ResultStore(path),
        )
        assert report.total == 4
        assert all(result is not None for result in report.results)


class TestResultContents:
    def test_metrics_and_stats_populated(self):
        report = run_grid(fast_grid(), base_seed=BASE_SEED, n_workers=1)
        for result in report.results:
            assert result.metrics["demand_acts"] > 0
            assert result.metrics["refreshes"] > 0
            assert "storage_bits" in result.tracker_stats
            assert result.key
            assert result.seed

    def test_unprotected_grid_detects_flips(self):
        grid = ExperimentGrid(
            trackers=[TrackerSpec.of("none")],
            attacks=[AttackSpec.of("single-sided")],
            configs=[
                PointConfig(
                    trh=30,
                    intervals=64,
                    max_act=8,
                    num_rows=1024,
                    refi_per_refw=64,
                    scaled_timing=True,
                )
            ],
        )
        report = run_grid(grid, base_seed=BASE_SEED, n_workers=1)
        assert report.results[0].failed
        assert report.results[0].metrics["flips"]


def store_files(path):
    """Every byte the store put on disk, keyed by relative name."""
    files = {path.name: path.read_bytes()}
    shards_dir = path.with_name(path.name + ".shards")
    if shards_dir.exists():
        for shard in sorted(shards_dir.glob("*.json")):
            files[f"shards/{shard.name}"] = shard.read_bytes()
    return files


@pytest.fixture
def four_cpus(monkeypatch):
    """Pretend the box has 4 usable CPUs so the pool guard lets the
    real fork pool run (CI boxes may expose only one)."""
    monkeypatch.setattr(repro.parallel, "default_workers", lambda: 4)


class TestCrashResume:
    def test_injected_crash_leaves_partial_store(self, tmp_path):
        path = tmp_path / "store.json"
        with pytest.raises(_InjectedCrash):
            run_grid(
                fast_grid(), base_seed=BASE_SEED, n_workers=1,
                store=ResultStore(path), fail_after_shards=2,
            )
        partial = ResultStore(path)
        assert len(partial) == 2
        state = journal_for_store(partial).load()
        assert state.interrupted
        assert len(state.planned) == 4
        assert len(state.done) == 2

    def test_resume_executes_only_missing_points(self, tmp_path):
        path = tmp_path / "store.json"
        with pytest.raises(_InjectedCrash):
            run_grid(
                fast_grid(), base_seed=BASE_SEED, n_workers=1,
                store=ResultStore(path), fail_after_shards=2,
            )
        report = run_grid(
            fast_grid(), base_seed=BASE_SEED, n_workers=1,
            store=ResultStore(path),
        )
        assert report.executed == 2
        assert report.cached == 2
        assert report.resumed == 2
        assert "resumed 2 from interrupted run" in report.summary()
        state = journal_for_store(ResultStore(path)).load()
        assert state.finished

    def test_resumed_store_bit_identical_to_clean_run(self, tmp_path):
        """The headline resume guarantee: kill + resume produces the
        exact bytes an uninterrupted run writes."""
        clean_path = tmp_path / "clean.json"
        run_grid(
            fast_grid(), base_seed=BASE_SEED, n_workers=1,
            store=ResultStore(clean_path),
        )
        crashed_path = tmp_path / "crashed.json"
        with pytest.raises(_InjectedCrash):
            run_grid(
                fast_grid(), base_seed=BASE_SEED, n_workers=1,
                store=ResultStore(crashed_path), fail_after_shards=1,
            )
        resumed = run_grid(
            fast_grid(), base_seed=BASE_SEED, n_workers=1,
            store=ResultStore(crashed_path),
        )
        assert resumed.total == 4
        clean = {
            name.replace("clean", "store"): content
            for name, content in store_files(clean_path).items()
        }
        recovered = {
            name.replace("crashed", "store"): content
            for name, content in store_files(crashed_path).items()
        }
        assert clean == recovered

    def test_completed_run_reports_no_resume(self, tmp_path):
        path = tmp_path / "store.json"
        run_grid(
            fast_grid(), base_seed=BASE_SEED, n_workers=1,
            store=ResultStore(path),
        )
        again = run_grid(
            fast_grid(), base_seed=BASE_SEED, n_workers=1,
            store=ResultStore(path),
        )
        assert again.resumed == 0


class TestShardedDispatch:
    def test_inline_dispatch_on_one_worker(self):
        report = run_grid(fast_grid(), base_seed=BASE_SEED, n_workers=1)
        assert report.dispatch == "inline"
        assert report.n_workers == 1
        assert sum(s.tasks for s in report.shards) == 4
        assert all(s.wall_seconds >= 0 for s in report.shards)
        assert report.exec_seconds > 0
        assert "shard(s), inline" in report.summary()

    def test_tiny_pending_set_stays_inline(self, four_cpus, tmp_path):
        """Below POOL_MIN_PENDING the pool cannot win; stay serial."""
        grid = fast_grid()
        grid.trackers = grid.trackers[:1]
        grid.attacks = grid.attacks[:1]
        report = run_grid(grid, base_seed=BASE_SEED, n_workers=4)
        assert report.dispatch == "inline"

    def test_pool_dispatch_bit_identical_to_serial(self, four_cpus):
        """1-vs-N determinism through the *sharded* scheduler with the
        real fork pool forced on."""
        serial = run_grid(fast_grid(), base_seed=BASE_SEED, n_workers=1)
        pooled = run_grid(fast_grid(), base_seed=BASE_SEED, n_workers=4)
        assert serial.dispatch == "inline"
        assert pooled.dispatch == "pool"
        assert pooled.n_workers == 4
        assert canonical(serial) == canonical(pooled)

    def test_pool_run_writes_same_store_files(self, four_cpus, tmp_path):
        serial_path = tmp_path / "serial.json"
        pooled_path = tmp_path / "pooled.json"
        run_grid(
            fast_grid(), base_seed=BASE_SEED, n_workers=1,
            store=ResultStore(serial_path),
        )
        run_grid(
            fast_grid(), base_seed=BASE_SEED, n_workers=4,
            store=ResultStore(pooled_path),
        )
        serial = {
            name.replace("serial", "store"): content
            for name, content in store_files(serial_path).items()
        }
        pooled = {
            name.replace("pooled", "store"): content
            for name, content in store_files(pooled_path).items()
        }
        assert serial == pooled

    def test_cached_run_plans_no_shards(self, tmp_path):
        path = tmp_path / "store.json"
        run_grid(
            fast_grid(), base_seed=BASE_SEED, n_workers=1,
            store=ResultStore(path),
        )
        report = run_grid(
            fast_grid(), base_seed=BASE_SEED, n_workers=1,
            store=ResultStore(path),
        )
        assert report.shards == []
        assert report.exec_seconds == 0
