"""The read path: QueryAPI caching and the ``repro serve`` HTTP front
end (stdlib client against a real threaded server)."""

import csv
import io
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.exp import ExperimentResult, QueryAPI, ResultStore, make_server


def stored_result(key, tracker="mint", attack="single-sided", failed=False):
    return ExperimentResult(
        key=key,
        tracker=tracker,
        attack=attack,
        trace=f"{attack}(row=1000)",
        seed=7,
        point={"tracker": {"name": tracker}},
        metrics={"failed": failed, "demand_acts": 10, "flips": []},
        tracker_stats={"storage_bits": 32},
    )


def populated_store(path=None):
    store = ResultStore(path)
    store.put(stored_result("aa11", tracker="mint"))
    store.put(stored_result("bb22", tracker="para", attack="double-sided"))
    store.put(stored_result("cc33", tracker="mint", failed=True))
    return store


class TestQueryAPI:
    def test_point_by_fingerprint_and_prefix(self):
        api = QueryAPI(populated_store())
        assert api.point("aa11").tracker == "mint"
        assert api.point("bb").tracker == "para"  # unambiguous prefix
        assert api.point("zz") is None
        assert api.point("") is None

    def test_ambiguous_prefix_is_a_miss(self):
        store = populated_store()
        store.put(stored_result("bb99"))
        api = QueryAPI(store)
        assert api.point("bb") is None
        assert api.point("bb22") is not None

    def test_sweep_filters(self):
        api = QueryAPI(populated_store())
        assert len(api.sweep()) == 3
        assert [r.key for r in api.sweep(tracker="mint")] == ["aa11", "cc33"]
        assert [r.key for r in api.sweep(attack="double-sided")] == ["bb22"]
        assert [r.key for r in api.sweep(failed=True)] == ["cc33"]
        assert api.sweep(tracker="mint", failed=False)[0].key == "aa11"

    def test_repeat_queries_hit_the_cache(self):
        api = QueryAPI(populated_store())
        api.sweep(tracker="mint")
        misses = api.misses
        api.sweep(tracker="mint")
        api.sweep(tracker="mint")
        assert api.misses == misses
        assert api.hits >= 2

    def test_cached_none_is_a_hit(self):
        """A negative lookup is memoized too — the sentinel default
        distinguishes a cached None from a cache miss."""
        api = QueryAPI(populated_store())
        assert api.point("zz") is None
        misses = api.misses
        assert api.point("zz") is None
        assert api.misses == misses

    def test_store_mutation_invalidates(self):
        store = populated_store()
        api = QueryAPI(store)
        assert len(api.sweep()) == 3
        store.put(stored_result("dd44"))
        assert len(api.sweep()) == 4  # generation re-keyed the cache

    def test_external_flush_picked_up_via_reload(self, tmp_path):
        path = tmp_path / "store.json"
        writer = populated_store(path)
        writer.flush()
        api = QueryAPI.open(path)
        assert len(api.sweep()) == 3
        writer.put(stored_result("dd44"))
        writer.flush()
        assert len(api.sweep()) == 4

    def test_csv_rows_share_the_result_serializer(self):
        api = QueryAPI(populated_store())
        rows = api.sweep_csv(tracker="para")
        assert len(rows) == 1
        row = rows[0]
        assert row["key"] == "bb22"
        assert row["tracker"] == "para"
        assert row["attack"] == "double-sided"
        assert row["demand_acts"] == 10
        assert row["scope"] == "bank"

    def test_status_reports_store_and_cache(self, tmp_path):
        path = tmp_path / "store.json"
        populated_store(path).flush()
        api = QueryAPI.open(path)
        api.keys()
        api.keys()
        status = api.status()
        assert status["results"] == 3
        assert status["store_path"] == str(path)
        assert status["store_disk_bytes"] > 0
        assert status["cache_hits"] == 1
        assert status["trackers"] == ["mint", "para"]


@pytest.fixture
def server(tmp_path):
    path = tmp_path / "store.json"
    populated_store(path).flush()
    httpd = make_server(QueryAPI.open(path), port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address[:2]
    yield f"http://{host}:{port}"
    httpd.shutdown()
    httpd.server_close()
    thread.join(timeout=5)


def fetch(url):
    with urllib.request.urlopen(url) as response:
        return response.status, response.read().decode("utf-8")


class TestServe:
    def test_status_route(self, server):
        status, body = fetch(server + "/v1/status")
        assert status == 200
        assert json.loads(body)["results"] == 3

    def test_points_index(self, server):
        _, body = fetch(server + "/v1/points")
        points = json.loads(body)["points"]
        assert [p["key"] for p in points] == ["aa11", "bb22", "cc33"]
        assert points[2]["failed"] is True

    def test_point_by_prefix(self, server):
        _, body = fetch(server + "/v1/point/bb")
        assert json.loads(body)["tracker"] == "para"

    def test_sweep_filtered(self, server):
        _, body = fetch(server + "/v1/sweep?tracker=mint&failed=false")
        results = json.loads(body)["results"]
        assert [r["key"] for r in results] == ["aa11"]

    def test_sweep_csv(self, server):
        _, body = fetch(server + "/v1/sweep?format=csv")
        rows = list(csv.DictReader(io.StringIO(body)))
        assert [row["key"] for row in rows] == ["aa11", "bb22", "cc33"]
        assert rows[0]["tracker"] == "mint"

    def test_unknown_route_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(server + "/v1/nonsense")
        assert excinfo.value.code == 404
        assert "error" in json.loads(excinfo.value.read().decode())

    def test_missing_point_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(server + "/v1/point/zz99")
        assert excinfo.value.code == 404

    def test_bad_format_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(server + "/v1/sweep?format=xml")
        assert excinfo.value.code == 400

    def test_bad_failed_flag_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(server + "/v1/sweep?failed=maybe")
        assert excinfo.value.code == 400
