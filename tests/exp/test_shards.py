"""Content-addressed shard planning: determinism and coverage."""

from repro.exp import TaskShard, plan_shards


def tasks_for(keys):
    return [{"key": key, "payload": f"task-{key}"} for key in keys]


KEYS = [f"{i:02x}{'f' * 6}" for i in range(17)]


class TestPartition:
    def test_every_task_appears_exactly_once(self):
        shards = plan_shards(tasks_for(KEYS), n_workers=4)
        covered = [key for shard in shards for key in shard.keys]
        assert sorted(covered) == sorted(KEYS)
        assert all(len(shard.keys) == len(shard.tasks) for shard in shards)

    def test_empty_input(self):
        assert plan_shards([], n_workers=4) == []

    def test_shard_count_bounded_by_tasks(self):
        shards = plan_shards(tasks_for(KEYS[:3]), n_workers=8)
        assert len(shards) == 3
        assert all(len(shard) == 1 for shard in shards)

    def test_shard_count_scales_with_workers(self):
        one = plan_shards(tasks_for(KEYS), n_workers=1)
        four = plan_shards(tasks_for(KEYS), n_workers=4)
        assert len(one) == 4  # 1 worker x 4 shards-per-worker
        assert len(four) == 16
        assert max(len(s) for s in four) - min(len(s) for s in four) <= 1

    def test_tasks_sorted_by_fingerprint_within_and_across(self):
        shuffled = tasks_for(list(reversed(KEYS)))
        shards = plan_shards(shuffled, n_workers=2)
        flattened = [key for shard in shards for key in shard.keys]
        assert flattened == sorted(KEYS)


class TestContentAddressing:
    def test_input_order_never_changes_the_plan(self):
        forward = plan_shards(tasks_for(KEYS), n_workers=2)
        backward = plan_shards(tasks_for(list(reversed(KEYS))), n_workers=2)
        assert forward == backward

    def test_shard_id_is_a_function_of_member_keys(self):
        first, second = (
            plan_shards(tasks_for(KEYS), n_workers=2) for _ in range(2)
        )
        assert [s.shard_id for s in first] == [s.shard_id for s in second]
        assert len({s.shard_id for s in first}) == len(first)

    def test_different_pending_sets_give_different_ids(self):
        full = plan_shards(tasks_for(KEYS), n_workers=1)
        partial = plan_shards(tasks_for(KEYS[1:]), n_workers=1)
        assert {s.shard_id for s in full} != {s.shard_id for s in partial}

    def test_shard_is_frozen_and_sized(self):
        (shard,) = plan_shards(tasks_for(KEYS[:2]), n_workers=1,
                               shards_per_worker=1)
        assert isinstance(shard, TaskShard)
        assert len(shard) == 2
