"""Result-store persistence: sharded v2 layout, atomicity, migration,
and corruption handling."""

import json

import pytest

from repro.exp import ExperimentResult, ResultStore, StoreFormatError, shard_key
from repro.exp.store import STORE_FORMAT


def sample_result(key="abc123", tracker="mint"):
    return ExperimentResult(
        key=key,
        tracker=tracker,
        attack="single-sided",
        trace="single-sided(row=1000)",
        seed=7,
        point={"tracker": {"name": tracker}},
        metrics={"failed": False, "demand_acts": 10,
                 "max_unmitigated": {"1000": 5}},
        tracker_stats={"storage_bits": 32},
    )


class TestRoundTrip:
    def test_persist_and_reload(self, tmp_path):
        path = tmp_path / "store.json"
        store = ResultStore(path)
        store.put(sample_result())
        store.flush()
        reloaded = ResultStore(path)
        assert len(reloaded) == 1
        assert "abc123" in reloaded
        assert reloaded.get("abc123") == sample_result()

    def test_in_memory_store_never_touches_disk(self, tmp_path):
        store = ResultStore()
        store.put(sample_result())
        assert store.flush() == 0
        assert len(store) == 1
        assert list(tmp_path.iterdir()) == []

    def test_results_ordered_by_key(self, tmp_path):
        store = ResultStore(tmp_path / "store.json")
        store.put(sample_result(key="bbb"))
        store.put(sample_result(key="aaa"))
        assert [r.key for r in store.results()] == ["aaa", "bbb"]
        assert store.keys() == ["aaa", "bbb"]

    def test_flush_output_is_stable(self, tmp_path):
        path = tmp_path / "store.json"
        store = ResultStore(path)
        store.put(sample_result())
        store.flush()
        first = path.read_text()
        shard = store.shards_dir / "ab.json"
        shard_first = shard.read_text()
        reloaded = ResultStore(path)
        assert reloaded.flush() == 0  # nothing dirty: no write at all
        assert path.read_text() == first
        assert shard.read_text() == shard_first


class TestShardedLayout:
    def test_manifest_and_shard_files(self, tmp_path):
        path = tmp_path / "store.json"
        store = ResultStore(path)
        store.put(sample_result(key="ab00ff"))
        store.put(sample_result(key="ab99ee"))
        store.put(sample_result(key="cd1234"))
        store.flush()
        manifest = json.loads(path.read_text())
        assert manifest["format"] == STORE_FORMAT
        assert manifest["shards"] == {"ab": 2, "cd": 1}
        shard = json.loads((store.shards_dir / "ab.json").read_text())
        assert sorted(shard["results"]) == ["ab00ff", "ab99ee"]

    def test_flush_writes_only_dirty_shards(self, tmp_path):
        path = tmp_path / "store.json"
        store = ResultStore(path)
        for key in ("aa01", "bb02", "cc03", "dd04"):
            store.put(sample_result(key=key))
        full_bytes = store.flush()
        assert store.last_flush_files == 5  # 4 shards + manifest
        before = {
            f.name: f.stat().st_mtime_ns
            for f in store.shards_dir.iterdir()
        }
        store.put(sample_result(key="aa05"))
        incremental = store.flush()
        assert store.last_flush_files == 2  # one shard + manifest
        assert incremental < full_bytes
        after = {
            f.name: f.stat().st_mtime_ns
            for f in store.shards_dir.iterdir()
        }
        unchanged = {name for name in before if before[name] == after[name]}
        assert unchanged == {"bb.json", "cc.json", "dd.json"}

    def test_write_order_never_changes_bytes(self, tmp_path):
        """Shard files are sorted by fingerprint: a store assembled
        incrementally is byte-identical to one written in a single
        pass — the property resume correctness rests on."""
        one = ResultStore(tmp_path / "one.json")
        for key in ("ab02", "ab01", "ab03"):
            one.put(sample_result(key=key))
        one.flush()
        two = ResultStore(tmp_path / "two.json")
        for key in ("ab03", "ab01"):
            two.put(sample_result(key=key))
            two.flush()
        two.put(sample_result(key="ab02"))
        two.flush()
        assert (
            (one.shards_dir / "ab.json").read_text()
            == (two.shards_dir / "ab.json").read_text()
        )
        assert (
            (tmp_path / "one.json").read_text()
            == (tmp_path / "two.json").read_text()
        )

    def test_clear_then_flush_removes_shards(self, tmp_path):
        path = tmp_path / "store.json"
        store = ResultStore(path)
        store.put(sample_result(key="ab01"))
        store.flush()
        store.clear()
        store.flush()
        assert not (store.shards_dir / "ab.json").exists()
        assert json.loads(path.read_text())["shards"] == {}

    def test_compact_drops_orphan_shards(self, tmp_path):
        path = tmp_path / "store.json"
        store = ResultStore(path)
        store.put(sample_result(key="ab01"))
        store.flush()
        orphan = store.shards_dir / "zz.json"
        orphan.write_text(json.dumps({"format": 2, "results": {}}))
        store.compact()
        assert not orphan.exists()
        assert (store.shards_dir / "ab.json").exists()

    def test_reload_if_changed_sees_external_writes(self, tmp_path):
        path = tmp_path / "store.json"
        writer = ResultStore(path)
        writer.put(sample_result(key="ab01"))
        writer.flush()
        reader = ResultStore(path)
        generation = reader.generation
        assert reader.reload_if_changed() is False
        writer.put(sample_result(key="cd02"))
        writer.flush()
        assert reader.reload_if_changed() is True
        assert len(reader) == 2
        assert reader.generation > generation


class TestV1Migration:
    def _v1_document(self):
        return {
            "format": 1,
            "results": {"abc123": sample_result().to_payload()},
        }

    def test_v1_blob_loads_through_shim(self, tmp_path):
        path = tmp_path / "store.json"
        path.write_text(json.dumps(self._v1_document()))
        store = ResultStore(path)
        assert len(store) == 1
        assert store.get("abc123") == sample_result()

    def test_v1_round_trips_to_v2(self, tmp_path):
        """Loading a v1 blob and flushing migrates it in place: the
        manifest replaces the blob, shards appear, and a fresh v2
        store of the same results is byte-identical."""
        path = tmp_path / "store.json"
        path.write_text(json.dumps(self._v1_document()))
        store = ResultStore(path)
        assert store.flush() > 0  # v1 load marks everything dirty
        migrated = json.loads(path.read_text())
        assert migrated["format"] == STORE_FORMAT
        assert "results" not in migrated
        reloaded = ResultStore(path)
        assert reloaded.get("abc123") == sample_result()

        fresh = ResultStore(tmp_path / "fresh.json")
        fresh.put(sample_result())
        fresh.flush()
        assert (
            (fresh.shards_dir / "ab.json").read_text()
            == (store.shards_dir / "ab.json").read_text()
        )

    def test_unparseable_v1_entries_skipped(self, tmp_path):
        document = self._v1_document()
        document["results"]["bad"] = {"not": "a result"}
        path = tmp_path / "store.json"
        path.write_text(json.dumps(document))
        store = ResultStore(path)
        assert len(store) == 1


class TestSchemaV2Compat:
    """A v2-era store must load unchanged under the bumped schema."""

    #: Verbatim shape of a SCHEMA_VERSION=2 store entry: the config
    #: payload carries only the eleven pre-Scenario knobs, and the
    #: metrics dict predates the `tracker` key.
    V2_DOCUMENT = {
        "format": 1,
        "results": {
            "feedc0de": {
                "key": "feedc0de",
                "tracker": "mint",
                "attack": "single-sided",
                "trace": "single-sided(row=1000)",
                "seed": 1234,
                "point": {
                    "tracker": {"name": "mint", "params": {},
                                "dmq": False, "dmq_depth": 4},
                    "attack": {"name": "single-sided", "params": {}},
                    "config": {
                        "trh": 300.0,
                        "intervals": 120,
                        "max_act": 73,
                        "base_row": 1000,
                        "num_rows": 131072,
                        "blast_radius": 1,
                        "allow_postponement": False,
                        "max_postponed": 4,
                        "refi_per_refw": 8192,
                        "scaled_timing": False,
                        "num_banks": 1,
                    },
                },
                "metrics": {"failed": False, "demand_acts": 8760,
                            "mitigations": 120},
                "tracker_stats": {"storage_bits": 32},
            }
        },
    }

    def test_v2_store_loads_unchanged(self, tmp_path):
        path = tmp_path / "store.json"
        path.write_text(json.dumps(self.V2_DOCUMENT))
        store = ResultStore(path)
        assert len(store) == 1
        result = store.get("feedc0de")
        assert result.tracker == "mint"
        assert not result.failed
        assert result.metrics["demand_acts"] == 8760

    def test_v2_point_payload_reconstructs(self, tmp_path):
        """The loader shim: a v2 point payload parses — missing v3
        knobs take their defaults — and recombines into a scenario."""
        from repro.exp import ExperimentPoint

        path = tmp_path / "store.json"
        path.write_text(json.dumps(self.V2_DOCUMENT))
        result = ResultStore(path).get("feedc0de")
        point = ExperimentPoint.from_payload(result.point)
        assert point.config.trh == 300.0
        assert point.config.vectorized is None
        assert point.config.concurrent_banks is None
        scenario = point.scenario(base_seed=7)
        assert scenario.tracker.name == "mint"
        assert scenario.seed == 7

    def test_v3_fingerprints_rekey_v2_results(self, tmp_path):
        """The schema bump deliberately invalidates cached results:
        the old key is not what v3 fingerprints the same point to, so
        a re-run executes it afresh instead of serving stale bits."""
        from repro.exp import ExperimentPoint

        result_payload = self.V2_DOCUMENT["results"]["feedc0de"]
        point = ExperimentPoint.from_payload(result_payload["point"])
        assert point.fingerprint(base_seed=5) != "feedc0de"


class TestCorruption:
    """An unusable store file is preserved, never silently clobbered."""

    def test_garbage_file_backed_up_with_warning(self, tmp_path):
        path = tmp_path / "store.json"
        path.write_text("{not json")
        with pytest.warns(UserWarning, match="backed up"):
            store = ResultStore(path)
        assert len(store) == 0
        assert (tmp_path / "store.json.bak").read_text() == "{not json"

    def test_foreign_document_backed_up(self, tmp_path):
        path = tmp_path / "store.json"
        foreign = json.dumps({"some": "other tool's file"})
        path.write_text(foreign)
        with pytest.warns(UserWarning):
            ResultStore(path)
        assert (tmp_path / "store.json.bak").read_text() == foreign

    def test_newer_format_refused(self, tmp_path):
        """A store written by a newer repro raises instead of being
        treated as empty (a flush would have destroyed it)."""
        path = tmp_path / "store.json"
        path.write_text(json.dumps({"format": 999, "results": {}}))
        with pytest.raises(StoreFormatError, match="format-999"):
            ResultStore(path)
        # the file is untouched
        assert json.loads(path.read_text())["format"] == 999

    def test_flush_after_corruption_preserves_backup(self, tmp_path):
        path = tmp_path / "store.json"
        path.write_text("{not json")
        with pytest.warns(UserWarning):
            store = ResultStore(path)
        store.put(sample_result())
        store.flush()
        assert len(ResultStore(path)) == 1
        assert (tmp_path / "store.json.bak").read_text() == "{not json"

    def test_corrupt_shard_backed_up(self, tmp_path):
        path = tmp_path / "store.json"
        store = ResultStore(path)
        store.put(sample_result(key="ab01"))
        store.put(sample_result(key="cd02"))
        store.flush()
        shard = store.shards_dir / "ab.json"
        shard.write_text("{broken")
        with pytest.warns(UserWarning, match="corrupt shard"):
            reloaded = ResultStore(path)
        assert len(reloaded) == 1  # the cd shard survived
        assert (store.shards_dir / "ab.json.bak").read_text() == "{broken"


class TestAccessors:
    def test_max_unmitigated_helper(self):
        result = sample_result()
        assert result.max_unmitigated(1000) == 5
        assert result.max_unmitigated(9999) == 0

    def test_overwrite_same_key(self):
        store = ResultStore()
        store.put(sample_result(tracker="mint"))
        store.put(sample_result(tracker="para"))
        assert len(store) == 1
        assert store.get("abc123").tracker == "para"

    def test_shard_key_is_prefix(self):
        assert shard_key("abcdef") == "ab"
        assert shard_key("abcdef", width=3) == "abc"
