"""Result-store persistence, atomicity, and corruption handling."""

import json

from repro.exp import ExperimentResult, ResultStore


def sample_result(key="abc123", tracker="mint"):
    return ExperimentResult(
        key=key,
        tracker=tracker,
        attack="single-sided",
        trace="single-sided(row=1000)",
        seed=7,
        point={"tracker": {"name": tracker}},
        metrics={"failed": False, "demand_acts": 10,
                 "max_unmitigated": {"1000": 5}},
        tracker_stats={"storage_bits": 32},
    )


class TestRoundTrip:
    def test_persist_and_reload(self, tmp_path):
        path = tmp_path / "store.json"
        store = ResultStore(path)
        store.put(sample_result())
        store.flush()
        reloaded = ResultStore(path)
        assert len(reloaded) == 1
        assert "abc123" in reloaded
        assert reloaded.get("abc123") == sample_result()

    def test_in_memory_store_never_touches_disk(self, tmp_path):
        store = ResultStore()
        store.put(sample_result())
        store.flush()
        assert len(store) == 1
        assert list(tmp_path.iterdir()) == []

    def test_results_ordered_by_key(self, tmp_path):
        store = ResultStore(tmp_path / "store.json")
        store.put(sample_result(key="bbb"))
        store.put(sample_result(key="aaa"))
        assert [r.key for r in store.results()] == ["aaa", "bbb"]

    def test_flush_output_is_stable(self, tmp_path):
        path = tmp_path / "store.json"
        store = ResultStore(path)
        store.put(sample_result())
        store.flush()
        first = path.read_text()
        ResultStore(path).flush()
        assert path.read_text() == first


class TestAccessors:
    def test_max_unmitigated_helper(self):
        result = sample_result()
        assert result.max_unmitigated(1000) == 5
        assert result.max_unmitigated(9999) == 0

    def test_overwrite_same_key(self):
        store = ResultStore()
        store.put(sample_result(tracker="mint"))
        store.put(sample_result(tracker="para"))
        assert len(store) == 1
        assert store.get("abc123").tracker == "para"


class TestCorruption:
    def test_garbage_file_treated_as_empty(self, tmp_path):
        path = tmp_path / "store.json"
        path.write_text("{not json")
        assert len(ResultStore(path)) == 0

    def test_foreign_format_ignored(self, tmp_path):
        path = tmp_path / "store.json"
        path.write_text(json.dumps({"format": 999, "results": {}}))
        assert len(ResultStore(path)) == 0

    def test_flush_recovers_corrupt_store(self, tmp_path):
        path = tmp_path / "store.json"
        path.write_text("{not json")
        store = ResultStore(path)
        store.put(sample_result())
        store.flush()
        assert len(ResultStore(path)) == 1
