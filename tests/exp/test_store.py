"""Result-store persistence, atomicity, and corruption handling."""

import json

from repro.exp import ExperimentResult, ResultStore


def sample_result(key="abc123", tracker="mint"):
    return ExperimentResult(
        key=key,
        tracker=tracker,
        attack="single-sided",
        trace="single-sided(row=1000)",
        seed=7,
        point={"tracker": {"name": tracker}},
        metrics={"failed": False, "demand_acts": 10,
                 "max_unmitigated": {"1000": 5}},
        tracker_stats={"storage_bits": 32},
    )


class TestRoundTrip:
    def test_persist_and_reload(self, tmp_path):
        path = tmp_path / "store.json"
        store = ResultStore(path)
        store.put(sample_result())
        store.flush()
        reloaded = ResultStore(path)
        assert len(reloaded) == 1
        assert "abc123" in reloaded
        assert reloaded.get("abc123") == sample_result()

    def test_in_memory_store_never_touches_disk(self, tmp_path):
        store = ResultStore()
        store.put(sample_result())
        store.flush()
        assert len(store) == 1
        assert list(tmp_path.iterdir()) == []

    def test_results_ordered_by_key(self, tmp_path):
        store = ResultStore(tmp_path / "store.json")
        store.put(sample_result(key="bbb"))
        store.put(sample_result(key="aaa"))
        assert [r.key for r in store.results()] == ["aaa", "bbb"]

    def test_flush_output_is_stable(self, tmp_path):
        path = tmp_path / "store.json"
        store = ResultStore(path)
        store.put(sample_result())
        store.flush()
        first = path.read_text()
        ResultStore(path).flush()
        assert path.read_text() == first


class TestAccessors:
    def test_max_unmitigated_helper(self):
        result = sample_result()
        assert result.max_unmitigated(1000) == 5
        assert result.max_unmitigated(9999) == 0

    def test_overwrite_same_key(self):
        store = ResultStore()
        store.put(sample_result(tracker="mint"))
        store.put(sample_result(tracker="para"))
        assert len(store) == 1
        assert store.get("abc123").tracker == "para"


class TestSchemaV2Compat:
    """A v2-era store must load unchanged under the bumped schema."""

    #: Verbatim shape of a SCHEMA_VERSION=2 store entry: the config
    #: payload carries only the eleven pre-Scenario knobs, and the
    #: metrics dict predates the `tracker` key.
    V2_DOCUMENT = {
        "format": 1,
        "results": {
            "feedc0de": {
                "key": "feedc0de",
                "tracker": "mint",
                "attack": "single-sided",
                "trace": "single-sided(row=1000)",
                "seed": 1234,
                "point": {
                    "tracker": {"name": "mint", "params": {},
                                "dmq": False, "dmq_depth": 4},
                    "attack": {"name": "single-sided", "params": {}},
                    "config": {
                        "trh": 300.0,
                        "intervals": 120,
                        "max_act": 73,
                        "base_row": 1000,
                        "num_rows": 131072,
                        "blast_radius": 1,
                        "allow_postponement": False,
                        "max_postponed": 4,
                        "refi_per_refw": 8192,
                        "scaled_timing": False,
                        "num_banks": 1,
                    },
                },
                "metrics": {"failed": False, "demand_acts": 8760,
                            "mitigations": 120},
                "tracker_stats": {"storage_bits": 32},
            }
        },
    }

    def test_v2_store_loads_unchanged(self, tmp_path):
        path = tmp_path / "store.json"
        path.write_text(json.dumps(self.V2_DOCUMENT))
        store = ResultStore(path)
        assert len(store) == 1
        result = store.get("feedc0de")
        assert result.tracker == "mint"
        assert not result.failed
        assert result.metrics["demand_acts"] == 8760

    def test_v2_point_payload_reconstructs(self, tmp_path):
        """The loader shim: a v2 point payload parses — missing v3
        knobs take their defaults — and recombines into a scenario."""
        from repro.exp import ExperimentPoint

        path = tmp_path / "store.json"
        path.write_text(json.dumps(self.V2_DOCUMENT))
        result = ResultStore(path).get("feedc0de")
        point = ExperimentPoint.from_payload(result.point)
        assert point.config.trh == 300.0
        assert point.config.vectorized is None
        assert point.config.concurrent_banks is None
        scenario = point.scenario(base_seed=7)
        assert scenario.tracker.name == "mint"
        assert scenario.seed == 7

    def test_v3_fingerprints_rekey_v2_results(self, tmp_path):
        """The schema bump deliberately invalidates cached results:
        the old key is not what v3 fingerprints the same point to, so
        a re-run executes it afresh instead of serving stale bits."""
        from repro.exp import ExperimentPoint

        result_payload = self.V2_DOCUMENT["results"]["feedc0de"]
        point = ExperimentPoint.from_payload(result_payload["point"])
        assert point.fingerprint(base_seed=5) != "feedc0de"


class TestCorruption:
    def test_garbage_file_treated_as_empty(self, tmp_path):
        path = tmp_path / "store.json"
        path.write_text("{not json")
        assert len(ResultStore(path)) == 0

    def test_foreign_format_ignored(self, tmp_path):
        path = tmp_path / "store.json"
        path.write_text(json.dumps({"format": 999, "results": {}}))
        assert len(ResultStore(path)) == 0

    def test_flush_recovers_corrupt_store(self, tmp_path):
        path = tmp_path / "store.json"
        path.write_text("{not json")
        store = ResultStore(path)
        store.put(sample_result())
        store.flush()
        assert len(ResultStore(path)) == 1
