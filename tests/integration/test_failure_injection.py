"""Failure injection: what breaks MINT when its assumptions break.

The threat model (Section II-B) assumes the attacker cannot observe the
TRNG. These tests inject the failures the design implicitly depends on
not happening — a predictable RNG, a stuck RNG, an undersized DMQ, a
tracker that names rows it never saw — and verify both that the attack
succeeds (the dependence is real) and that the simulator surfaces it.
"""

import random

import pytest

from repro.attacks import AttackParams, postponement_decoy_multi
from repro.core.dmq import DelayedMitigationQueue
from repro.core.mint import MintTracker
from repro.sim.engine import BankSimulator, EngineConfig, run_attack
from repro.sim.trace import Interval, Trace
from repro.trackers.base import MitigationRequest, Tracker


class _PredictableRng:
    """An RNG the attacker fully predicts (always selects slot 1)."""

    def randint(self, lo, hi):
        return max(lo, 1)

    def random(self):
        return 0.5


class _StuckZeroRng:
    """A TRNG stuck at the transitive slot: MINT never selects."""

    def randint(self, lo, hi):
        return lo  # 0 with the transitive slot enabled

    def random(self):
        return 0.0


class TestRngFailures:
    def test_predictable_rng_breaks_mint(self):
        """If SAN is always 1, the attacker sacrifices one decoy ACT per
        interval and hammers freely with the other 72. Rows are placed
        high in the address space so the rolling auto-refresh does not
        reach them during the 100-interval run."""
        tracker = MintTracker(transitive=False, rng=_PredictableRng())
        decoy, target = 90_000, 50_000
        intervals = [
            Interval.of([decoy] + [target] * 72) for _ in range(100)
        ]
        result = run_attack(
            tracker, Trace("rng-oracle", intervals), trh=4800
        )
        assert result.failed
        # Every mitigation was wasted on the decoy.
        assert result.max_unmitigated[target] == 72 * 100

    def test_stuck_trng_disables_selection(self):
        tracker = MintTracker(transitive=True, rng=_StuckZeroRng())
        trace = Trace(
            "stuck", [Interval.of([1000] * 73) for _ in range(60)]
        )
        result = run_attack(tracker, trace, trh=4000)
        assert result.failed
        assert result.mitigations == 0

    def test_healthy_rng_survives_same_attacks(self):
        tracker = MintTracker(transitive=False, rng=random.Random(1))
        decoy, target = 5000, 1000
        intervals = [
            Interval.of([decoy] + [target] * 72) for _ in range(100)
        ]
        result = run_attack(
            tracker, Trace("same-pattern", intervals), trh=4800
        )
        assert not result.failed


class TestStructuralFailures:
    def test_undersized_dmq_leaks_targets(self):
        """A depth-2 DMQ against the 4-target decoy attack: dropped
        targets accumulate unboundedly."""
        params = AttackParams(max_act=73, intervals=400)
        targets = [70_000 + 10 * i for i in range(4)]
        tracker = DelayedMitigationQueue(
            MintTracker(transitive=False, rng=random.Random(2)),
            max_act=73,
            depth=2,
        )
        result = run_attack(
            tracker,
            postponement_decoy_multi(targets, params),
            trh=1e9,
            allow_postponement=True,
        )
        peak = max(result.max_unmitigated.get(t, 0) for t in targets)
        assert tracker.overflow_drops > 0
        assert peak > 5_000

    def test_mismatched_dmq_interval_is_blind(self):
        """A DMQ sized for the wrong M (e.g. 146) never pseudo-mitigates
        at the real boundary and the decoy attack returns."""
        from repro.attacks import postponement_decoy

        params = AttackParams(max_act=73, intervals=400)
        tracker = DelayedMitigationQueue(
            MintTracker(rng=random.Random(3)), max_act=365, depth=4
        )
        result = run_attack(
            tracker,
            postponement_decoy(70_000, params),
            trh=1e9,
            allow_postponement=True,
        )
        # With max_act=365 no pseudo-mitigation fires inside the
        # super-window: the target's exposure collapses back toward the
        # unprotected case.
        assert result.pseudo_mitigations == 0

    def test_lying_tracker_is_a_refresh_rate_hammer(self):
        """A malicious/buggy tracker naming an arbitrary row performs
        victim refreshes around it — and those refreshes double-side
        hammer the named row itself at 2 disturbances per REF. The
        exposure is real but rate-limited to the mitigation rate, so it
        only threatens devices whose TRH is below 2 x 8192 per tREFW.
        (This is the same physics as the transitive channel the paper
        bounds in Section V-E.)"""

        class LyingTracker(Tracker):
            name = "liar"

            def on_activate(self, row):
                pass

            def on_refresh(self):
                return [MitigationRequest(7777)]

        # At TRH 500, 400 REFs x 2 disturbances crosses the threshold.
        simulator = BankSimulator(LyingTracker(), EngineConfig(trh=500))
        trace = Trace("idle", [Interval.of([]) for _ in range(400)])
        result = simulator.run(trace)
        model = simulator.device.banks[0]
        assert result.failed
        assert result.flips[0].row == 7777
        # Distance-2 rows absorb one disturbance per refresh.
        assert model.peak_disturbance(7775) == pytest.approx(400, abs=1)

        # At a realistic TRH the same misbehaviour is harmless within
        # the refresh window (2 per REF cannot reach 4800 in 8192 REFs
        # without also beating auto-refresh).
        simulator = BankSimulator(LyingTracker(), EngineConfig(trh=4800))
        result = simulator.run(
            Trace("idle", [Interval.of([]) for _ in range(2000)])
        )
        assert not result.failed
