"""End-to-end checks of the paper's headline claims.

Each test names the claim and the paper section it comes from. These
are the assertions a reviewer would check first.
"""

import random

import pytest

from repro.analysis import (
    mint_mintrh_d,
    mint_vs_prct_gap,
    mint_dmq_vs_prct_gap,
    table4,
    table5,
    worst_case_ada_mintrh,
)
from repro.attacks import (
    AttackParams,
    double_sided,
    expected_unmitigated_acts,
    half_double,
    postponement_decoy,
    single_sided,
)
from repro.core.dmq import DelayedMitigationQueue
from repro.core.mint import MintTracker
from repro.sim.engine import BankSimulator, EngineConfig, run_attack


class TestAbstractClaims:
    def test_claim_mintrh_d_1400(self):
        """Abstract: 'MINT has a MinTRH-D of 1400' (without DMQ)."""
        assert mint_mintrh_d() == pytest.approx(1400, rel=0.01)

    def test_claim_mintrh_d_1482_with_dmq(self):
        """Abstract: 'MINT has a MinTRH of 1482' (with DMQ, adaptive)."""
        _mp, value = worst_case_ada_mintrh(double_sided=True)
        assert value == pytest.approx(1482, rel=0.02)

    def test_claim_356_with_rfm16(self):
        """Abstract: 'can be lowered to 356 with RFM'."""
        rows = table5()
        assert rows[-1].mintrh_d == pytest.approx(356, rel=0.05)

    def test_claim_within_2x_of_idealized(self):
        """Abstract: 'within 2x of the MinTRH of an idealized design'."""
        assert mint_vs_prct_gap() < 2.5
        assert mint_dmq_vs_prct_gap() < 2.0

    def test_claim_better_than_677_entry_mithril(self):
        """Abstract: 'lower than a prior counter-based design with 677
        entries per bank' (under refresh postponement)."""
        rows = {row.name: row for row in table4()}
        assert rows["MINT"].mintrh_d_with_dmq <= rows["Mithril"].mintrh_d_with_dmq

    def test_claim_storage_four_bytes(self):
        """Abstract: 'The storage overhead of MINT is four bytes'."""
        tracker = MintTracker(rng=random.Random(0))
        assert tracker.storage_bits == 32


class TestGuaranteedProtection:
    """Section V-C: classic attacks are bounded by construction.

    Without the transitive slot, selection is guaranteed every interval
    and the victim's unmitigated run is deterministically <= 2M. With
    the transitive slot, each SAN=0 draw (probability 1/74) skips one
    selection, so the run has a geometric tail: runs of j extra
    intervals occur with probability 74^-j — still bounded far below
    any realistic threshold.
    """

    @pytest.mark.parametrize("seed", range(5))
    def test_single_sided_deterministic_bound_without_slot(self, seed):
        params = AttackParams(max_act=73, intervals=400)
        tracker = MintTracker(transitive=False, rng=random.Random(seed))
        simulator = BankSimulator(tracker, EngineConfig(trh=1e9))
        simulator.run(single_sided(params))
        model = simulator.device.banks[0]
        base = params.base_row
        for victim in (base - 1, base + 1):
            assert model.peak_disturbance(victim) <= 2 * 73

    @pytest.mark.parametrize("seed", range(5))
    def test_single_sided_geometric_tail_with_slot(self, seed):
        params = AttackParams(max_act=73, intervals=400)
        tracker = MintTracker(transitive=True, rng=random.Random(seed))
        simulator = BankSimulator(tracker, EngineConfig(trh=1e9))
        simulator.run(single_sided(params))
        model = simulator.device.banks[0]
        base = params.base_row
        for victim in (base - 1, base + 1):
            # 2M plus a couple of 74^-j tail intervals at these seeds.
            assert model.peak_disturbance(victim) <= 4 * 73 + 4

    @pytest.mark.parametrize("seed", range(5))
    def test_double_sided_bounded(self, seed):
        params = AttackParams(max_act=73, intervals=400)
        tracker = MintTracker(rng=random.Random(seed))
        simulator = BankSimulator(tracker, EngineConfig(trh=1e9))
        simulator.run(double_sided(params, victim=params.base_row))
        model = simulator.device.banks[0]
        assert model.peak_disturbance(params.base_row) <= 4 * 73 + 4


class TestTransitiveAttackClaims:
    """Section V-E: Half-Double and the transitive-mitigation fix."""

    def test_half_double_beats_mint_without_transitive_slot(self):
        params = AttackParams(max_act=73, intervals=1000)
        tracker = MintTracker(transitive=False, rng=random.Random(3))
        simulator = BankSimulator(tracker, EngineConfig(trh=1e9))
        simulator.run(half_double(params))
        model = simulator.device.banks[0]
        distance2 = max(
            model.peak_disturbance(params.base_row - 2),
            model.peak_disturbance(params.base_row + 2),
        )
        # One silent activation per REF: ~8192 per tREFW at full scale.
        assert distance2 > 800

    def test_transitive_slot_caps_half_double(self):
        params = AttackParams(max_act=73, intervals=1000)
        tracker = MintTracker(transitive=True, rng=random.Random(3))
        simulator = BankSimulator(tracker, EngineConfig(trh=1e9))
        simulator.run(half_double(params))
        model = simulator.device.banks[0]
        distance2 = max(
            model.peak_disturbance(params.base_row - 2),
            model.peak_disturbance(params.base_row + 2),
        )
        # Transitive mitigations fire ~1/74 of REFs; the victim's run
        # stays geometric with mean 74, far under the direct threshold.
        assert distance2 < 800


class TestPostponementClaims:
    """Section VI: the 478K blow-up and the DMQ fix."""

    def test_decoy_attack_is_deterministic_without_dmq(self):
        params = AttackParams(max_act=73, intervals=500)
        target = 31_000
        tracker = MintTracker(rng=random.Random(4))
        result = run_attack(
            tracker,
            postponement_decoy(target, params),
            trh=1e9,
            allow_postponement=True,
        )
        assert result.max_unmitigated[target] == expected_unmitigated_acts(params)
        assert result.max_unmitigated[target] == 29_200  # 4/5 of 500*73

    def test_dmq_caps_decoy_attack_at_292(self):
        """Section VI-D: at most 73x4 = 292 extra activations."""
        params = AttackParams(max_act=73, intervals=500)
        target = 31_000
        tracker = DelayedMitigationQueue(
            MintTracker(rng=random.Random(5)), max_act=73, depth=4
        )
        result = run_attack(
            tracker,
            postponement_decoy(target, params),
            trh=1e9,
            allow_postponement=True,
        )
        assert result.max_unmitigated[target] <= 365 + 292


class TestSpatialCorrelationClaim:
    """Section V-F: a sandwiched victim gets both neighbours' chances."""

    def test_double_sided_victim_refreshed_by_either_selection(self):
        params = AttackParams(max_act=73, intervals=3000)
        tracker = MintTracker(rng=random.Random(6))
        simulator = BankSimulator(tracker, EngineConfig(trh=1e9))
        simulator.run(double_sided(params, victim=params.base_row))
        model = simulator.device.banks[0]
        victim_peak = model.peak_disturbance(params.base_row)
        # Each neighbour is selected with probability ~36/74 per
        # interval (36 copies each); the victim's unmitigated run stays
        # a small multiple of one interval's hammering.
        assert victim_peak <= 4 * 73 + 4
