"""Backend selection, fallback, and telemetry pins for the compiled tier.

``EngineConfig.backend`` is a pure implementation knob: ``"compiled"``
must fail loudly when no provider exists, ``"auto"`` must fall back to
the pure-NumPy fused path bit-identically, and whatever path executes,
the kernel telemetry has to account for every step.
"""

import json
from dataclasses import asdict

import pytest

from repro import kernels
from repro.kernels import forced_provider
from repro.sim.engine import ChannelSimulator, EngineConfig, RankSimulator
from repro.sim.trace import ChannelTrace, CycleStream, RankInterval
from repro.trackers.registry import channel_tracker_factory

NUM_ROWS = 64
INTERVALS = 60


def _providers():
    """Every march provider that can run on this host (the interpreted
    reference always can)."""
    names = []
    if kernels.HAVE_NUMBA:
        names.append("numba")
    from repro.kernels import cext

    if cext.available():
        names.append("cext")
    names.append("interpreted")
    return names


def _trace(num_ranks):
    interval = RankInterval.of(
        [(i % 2, 10 + 2 * (i % 5)) for i in range(12)]
    )
    return ChannelTrace(
        name="backend-pin",
        per_rank={
            rank: CycleStream(f"r{rank}", (interval,), INTERVALS)
            for rank in range(num_ranks)
        },
    )


def _config(backend, trh=10**9, num_ranks=2):
    return EngineConfig(
        num_banks=2,
        num_ranks=num_ranks,
        num_rows=NUM_ROWS,
        trh=trh,
        refi_per_refw=8,
        backend=backend,
    )


def _run(tracker, backend, trh=10**9, num_ranks=2):
    simulator = ChannelSimulator(
        channel_tracker_factory(tracker, seed=11),
        _config(backend, trh=trh, num_ranks=num_ranks),
    )
    result = simulator.run(_trace(num_ranks))
    return json.dumps(asdict(result), sort_keys=True), result


class TestSelection:
    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            ChannelSimulator(
                channel_tracker_factory("mint", seed=1),
                _config("fast"),
            )

    def test_compiled_without_provider_raises_clear_error(self):
        with forced_provider("none"):
            with pytest.raises(RuntimeError) as excinfo:
                ChannelSimulator(
                    channel_tracker_factory("mint", seed=1),
                    _config("compiled"),
                )
        message = str(excinfo.value)
        assert "compiled" in message
        assert "pip install .[compiled]" in message
        assert "auto" in message

    def test_rank_engine_compiled_pin_requires_provider_too(self):
        with forced_provider("none"):
            with pytest.raises(RuntimeError, match="compiled"):
                RankSimulator(
                    lambda bank, rng=None: channel_tracker_factory(
                        "mint", seed=1
                    )(0, bank),
                    _config("compiled", num_ranks=1),
                )

    def test_compiled_requires_fused_kernel(self):
        config = EngineConfig(
            num_banks=2, num_ranks=2, num_rows=NUM_ROWS,
            fused=False, backend="compiled",
        )
        with forced_provider("interpreted"):
            with pytest.raises(RuntimeError, match="fused"):
                ChannelSimulator(
                    channel_tracker_factory("mint", seed=1), config
                )

    def test_forced_provider_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown provider"):
            forced_provider("fortran")

    def test_provider_resolution_respects_forcing(self):
        with forced_provider("none"):
            assert kernels.provider() is None
            assert not kernels.available()
            assert "forced off" in kernels.unavailable_reason()
        with forced_provider("interpreted"):
            assert kernels.provider() == "interpreted"
            assert kernels.available()
            assert kernels.require_compiled() == "interpreted"


class TestFallbackIdentity:
    def test_auto_without_provider_matches_numpy_bit_for_bit(self):
        base, _ = _run("mint", "numpy")
        with forced_provider("none"):
            fallen_back, result = _run("mint", "auto")
        assert fallen_back == base
        assert result.kernel_stats["backend"] == "numpy"
        assert result.kernel_stats["compiled_steps"] == 0

    @pytest.mark.parametrize("provider", _providers())
    @pytest.mark.parametrize("tracker", ["mint", "none"])
    def test_each_provider_matches_numpy_bit_for_bit(
        self, provider, tracker
    ):
        base, _ = _run(tracker, "numpy")
        with forced_provider(provider):
            compiled, result = _run(tracker, "compiled")
        assert compiled == base
        stats = result.kernel_stats
        assert stats["provider"] == provider
        assert stats["compiled_steps"] > 0

    @pytest.mark.parametrize("provider", _providers())
    def test_flip_heavy_threshold_bails_back_bit_identically(
        self, provider
    ):
        # trh low enough that the march hits its flip-safety bound and
        # hands the remainder to the per-step path mid-run.
        base, _ = _run("mint", "numpy", trh=25.0)
        with forced_provider(provider):
            compiled, result = _run("mint", "compiled", trh=25.0)
        assert compiled == base
        assert result.kernel_stats["compiled_bails"] >= 1


class TestTelemetry:
    def test_every_step_is_accounted_once(self):
        _, result = _run("mint", "auto")
        stats = result.kernel_stats
        assert stats["steps"] == INTERVALS
        assert (
            stats["fast_path_steps"]
            + stats["slow_path_steps"]
            + stats["compiled_steps"]
            == stats["steps"]
        )
        assert (
            stats["plan_cache_hits"] + stats["plan_cache_misses"]
            == stats["steps"]
        )
        assert stats["plan_cache_misses"] == 1  # one distinct interval

    def test_kernel_stats_stay_out_of_the_canonical_payload(self):
        _, result = _run("mint", "auto")
        assert result.kernel_stats is not None
        assert "kernel_stats" not in asdict(result)
        assert "kernel_stats" not in result.to_payload()
        opted_in = result.to_payload(include_kernel_stats=True)
        assert opted_in["kernel_stats"] == result.kernel_stats

    def test_unfused_run_attaches_no_stats(self):
        simulator = ChannelSimulator(
            channel_tracker_factory("mint", seed=11),
            EngineConfig(
                num_banks=2, num_ranks=2, num_rows=NUM_ROWS, fused=False
            ),
        )
        result = simulator.run(_trace(2))
        assert result.kernel_stats is None
