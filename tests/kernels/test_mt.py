"""Bit-exactness pins for the vectorized MT19937 randint stream.

``draw_exact`` is the compiled march's randomness contract: its values
AND the post-draw generator state must equal ``n`` scalar
``rng.randint`` calls exactly, or a compiled run would silently fork
the random stream from the pure-Python engines.
"""

import random

import pytest
from hypothesis import given, strategies as st

from repro.kernels.mt import draw_exact, mt_state, set_mt_state

from tests.property.settings import STANDARD_SETTINGS

RANGES = [(1, 73), (0, 73), (0, 1), (1, 1), (0, 127), (5, 5), (3, 16),
          (0, 2**31 - 2)]


@pytest.mark.parametrize("seed", [0, 1, 7, 12345, 999999])
@pytest.mark.parametrize("low,high", RANGES)
def test_values_and_state_match_scalar_randint(seed, low, high):
    for n in (0, 1, 5, 700, 1300, 2001):
        reference = random.Random(seed)
        vectorized = random.Random(seed)
        expected = [reference.randint(low, high) for _ in range(n)]
        got = draw_exact(vectorized, n, low, high)
        assert got.tolist() == expected
        # The post-draw state must match word for word, so scalar and
        # vectorized consumers continue the very same stream.
        assert vectorized.getstate() == reference.getstate()


@given(
    seed=st.integers(0, 2**32),
    low=st.integers(0, 5),
    span=st.integers(0, 200),
    chunks=st.lists(st.integers(0, 50), min_size=1, max_size=6),
)
@STANDARD_SETTINGS
def test_interleaved_scalar_and_vector_draws_continue_one_stream(
    seed, low, span, chunks
):
    high = low + span
    reference = random.Random(seed)
    mixed = random.Random(seed)
    for i, n in enumerate(chunks):
        expected = [reference.randint(low, high) for _ in range(n)]
        if i % 2 == 0:
            assert draw_exact(mixed, n, low, high).tolist() == expected
        else:
            assert [mixed.randint(low, high) for _ in range(n)] == expected
    assert mixed.getstate() == reference.getstate()


def test_rewind_and_redraw_reproduces_consumed_prefix():
    # The march's bail protocol: save state, draw n, rewind, draw the
    # consumed prefix — the generator must land exactly where `done`
    # scalar draws would have left it.
    rng = random.Random(42)
    saved = rng.getstate()
    full = draw_exact(rng, 100, 1, 73)
    rng.setstate(saved)
    prefix = draw_exact(rng, 37, 1, 73)
    assert prefix.tolist() == full[:37].tolist()
    reference = random.Random(42)
    for _ in range(37):
        reference.randint(1, 73)
    assert rng.getstate() == reference.getstate()


def test_wide_ranges_are_rejected():
    rng = random.Random(0)
    before = rng.getstate()
    with pytest.raises(ValueError, match="32"):
        draw_exact(rng, 1, 0, 2**32)
    with pytest.raises(ValueError, match="empty"):
        draw_exact(rng, 1, 10, 9)
    assert rng.getstate() == before


def test_state_roundtrip():
    rng = random.Random(99)
    rng.random()  # desync pos from a fresh seed
    mt, pos, gauss = mt_state(rng)
    other = random.Random(0)
    set_mt_state(other, mt, pos, gauss)
    assert other.getstate() == rng.getstate()
