"""Engine-level behaviour: discovery, suppressions, parse errors."""

import textwrap

from repro.lint import (
    PARSE_RULE_ID,
    iter_python_files,
    parse_suppressions,
    run_lint,
)
from repro.lint.rules.private_poke import PrivatePokeRule
from repro.lint.rules.seed_policy import SeedPolicyRule


def write(tmp_path, relpath, source):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


class TestParseSuppressions:
    def test_inline_comment_covers_its_line(self):
        source = "x = 1  # repro-lint: allow[seed-policy] reason\n"
        assert parse_suppressions(source) == {1: {"seed-policy"}}

    def test_standalone_comment_also_covers_next_line(self):
        source = "# repro-lint: allow[private-poke] reason\nobj._x = 1\n"
        suppressions = parse_suppressions(source)
        assert suppressions[1] == {"private-poke"}
        assert suppressions[2] == {"private-poke"}

    def test_comma_separated_rule_list(self):
        source = "x = 1  # repro-lint: allow[seed-policy, private-poke]\n"
        assert parse_suppressions(source)[1] == {
            "seed-policy", "private-poke",
        }

    def test_allow_all_token(self):
        assert parse_suppressions("x = 1  # repro-lint: allow[all]\n") == {
            1: {"all"}
        }

    def test_plain_comments_do_not_suppress(self):
        assert parse_suppressions("x = 1  # ordinary comment\n") == {}


class TestIterPythonFiles:
    def test_walks_directories_and_skips_caches(self, tmp_path):
        keep = write(tmp_path, "pkg/mod.py", "x = 1\n")
        write(tmp_path, "pkg/__pycache__/mod.cpython-310.py", "x = 1\n")
        write(tmp_path, ".git/hook.py", "x = 1\n")
        assert iter_python_files([tmp_path]) == [keep]

    def test_files_taken_verbatim_and_result_sorted(self, tmp_path):
        b = write(tmp_path, "b.py", "x = 1\n")
        a = write(tmp_path, "a.py", "x = 1\n")
        assert iter_python_files([b, a]) == [a, b]


class TestRunLint:
    def test_clean_tree_has_no_findings(self, tmp_path):
        write(tmp_path, "mod.py", "VALUE = 1\n")
        findings, scanned = run_lint([tmp_path])
        assert findings == []
        assert scanned == 1

    def test_syntax_error_becomes_a_parse_finding(self, tmp_path):
        write(tmp_path, "broken.py", "def oops(:\n")
        findings, _ = run_lint([tmp_path])
        assert len(findings) == 1
        assert findings[0].rule == PARSE_RULE_ID
        assert findings[0].path.endswith("broken.py")

    def test_suppressed_finding_is_dropped(self, tmp_path):
        write(
            tmp_path, "mod.py",
            "import random\n"
            "x = random.random()  # repro-lint: allow[seed-policy] test\n",
        )
        findings, _ = run_lint([tmp_path], rules=[SeedPolicyRule])
        assert findings == []

    def test_allow_all_suppresses_any_rule(self, tmp_path):
        write(
            tmp_path, "mod.py",
            "import random\n"
            "x = random.random()  # repro-lint: allow[all]\n",
        )
        findings, _ = run_lint([tmp_path], rules=[SeedPolicyRule])
        assert findings == []

    def test_mismatched_suppression_does_not_drop(self, tmp_path):
        write(
            tmp_path, "mod.py",
            "import random\n"
            "x = random.random()  # repro-lint: allow[private-poke]\n",
        )
        findings, _ = run_lint([tmp_path], rules=[SeedPolicyRule])
        assert len(findings) == 1
        assert findings[0].rule == "seed-policy"

    def test_findings_sorted_by_position(self, tmp_path):
        write(
            tmp_path, "mod.py",
            "import random\n"
            "a = random.random()\n"
            "obj = object()\n"
            "obj._x = 1\n",
        )
        findings, _ = run_lint(
            [tmp_path], rules=[PrivatePokeRule, SeedPolicyRule]
        )
        assert [f.line for f in findings] == sorted(f.line for f in findings)
        assert {f.rule for f in findings} == {"seed-policy", "private-poke"}

    def test_rule_subset_restricts_the_pass(self, tmp_path):
        write(
            tmp_path, "mod.py",
            "import random\n"
            "a = random.random()\n"
            "obj = object()\n"
            "obj._x = 1\n",
        )
        findings, _ = run_lint([tmp_path], rules=[PrivatePokeRule])
        assert {f.rule for f in findings} == {"private-poke"}
