"""The identity manifests agree with the runtime, not just the linter.

The ``identity-manifest`` rule checks the manifests *statically*;
these tests pin the other half of the contract: the manifests describe
the real dataclasses, ``Scenario.identity_payload`` consumes the
``excluded`` bucket at runtime (so manifest and fingerprint behaviour
cannot drift), and the ``PointConfig`` manifest mirrors the
``Scenario`` one field-for-field.
"""

import dataclasses

import pytest

from repro.exp.grid import IDENTITY_MANIFEST as GRID_MANIFEST
from repro.exp.grid import PointConfig
from repro.scenario import (
    IDENTITY_MANIFEST as SCENARIO_MANIFEST,
    AttackSpec,
    Scenario,
    TrackerSpec,
)

CLASSES = {
    "TrackerSpec": (TrackerSpec, SCENARIO_MANIFEST),
    "AttackSpec": (AttackSpec, SCENARIO_MANIFEST),
    "Scenario": (Scenario, SCENARIO_MANIFEST),
    "PointConfig": (PointConfig, GRID_MANIFEST),
}


@pytest.mark.parametrize("name", sorted(CLASSES))
def test_manifest_covers_every_field_exactly_once(name):
    cls, manifest = CLASSES[name]
    entry = manifest[name]
    identity = set(entry["identity"])
    excluded = set(entry["excluded"])
    fields = {f.name for f in dataclasses.fields(cls)}
    assert identity | excluded == fields
    assert identity & excluded == set()


def test_point_config_mirrors_scenario_manifest():
    scenario_entry = SCENARIO_MANIFEST["Scenario"]
    point_entry = GRID_MANIFEST["PointConfig"]
    assert point_entry["excluded"] == scenario_entry["excluded"]
    # PointConfig is the engine-knob slice: Scenario identity minus the
    # spec/seed coordinates a grid re-attaches per point, and minus the
    # custom-timing override grid points refuse to carry (not JSON).
    assert set(point_entry["identity"]) == (
        set(scenario_entry["identity"])
        - {"tracker", "attack", "seed", "timing"}
    )


def test_identity_payload_drops_exactly_the_excluded_knobs():
    scenario = Scenario(tracker="mint", attack="double-sided")
    payload = scenario.to_payload()
    identity = scenario.identity_payload()
    excluded = set(SCENARIO_MANIFEST["Scenario"]["excluded"])
    # num_ranks=1 (the pre-channel geometry) is additionally elided for
    # fingerprint stability; see Scenario.identity_payload.
    assert set(payload) - set(identity) == excluded | {"num_ranks"}
    for name in set(payload) & set(identity):
        assert payload[name] == identity[name]


def test_identity_payload_keeps_num_ranks_above_one():
    scenario = Scenario(tracker="mint", attack="double-sided", num_ranks=2)
    identity = scenario.identity_payload()
    assert identity["num_ranks"] == 2


def test_excluded_knobs_do_not_move_the_fingerprint():
    base = Scenario(tracker="mint", attack="double-sided")
    for knob in SCENARIO_MANIFEST["Scenario"]["excluded"]:
        value = True if knob == "vectorized" else "numpy"
        varied = dataclasses.replace(base, **{knob: value})
        assert varied.fingerprint() == base.fingerprint()
    rekeyed = dataclasses.replace(base, trh=base.trh + 1)
    assert rekeyed.fingerprint() != base.fingerprint()
