"""Reporter contract: text rendering and the versioned JSON schema."""

import json

import pytest

from repro.lint import (
    JSON_SCHEMA_VERSION,
    Finding,
    parse_json,
    render_json,
    render_text,
)

FINDINGS = [
    Finding(
        path="src/repro/a.py", line=3, col=4, rule="seed-policy",
        message="global RNG call",
    ),
    Finding(
        path="src/repro/b.py", line=10, col=0, rule="private-poke",
        message="external private write",
    ),
]


class TestTextReporter:
    def test_one_line_per_finding_plus_trailer(self):
        text = render_text(FINDINGS, files_scanned=7)
        lines = text.splitlines()
        assert lines[0] == (
            "src/repro/a.py:3:4: [seed-policy] global RNG call"
        )
        assert lines[-1] == "2 findings in 7 files"

    def test_clean_trailer(self):
        assert render_text([], files_scanned=1) == "checked 1 file: clean"

    def test_singular_finding_count(self):
        text = render_text(FINDINGS[:1], files_scanned=2)
        assert text.splitlines()[-1] == "1 finding in 2 files"


class TestJsonReporter:
    def test_document_shape(self):
        document = json.loads(render_json(FINDINGS, files_scanned=7))
        assert document["version"] == JSON_SCHEMA_VERSION
        assert document["files_scanned"] == 7
        assert [entry["rule"] for entry in document["findings"]] == [
            "seed-policy", "private-poke",
        ]
        assert set(document["findings"][0]) == {
            "path", "line", "col", "rule", "message",
        }

    def test_round_trip_is_lossless(self):
        text = render_json(FINDINGS, files_scanned=7)
        findings, files_scanned = parse_json(text)
        assert findings == FINDINGS
        assert files_scanned == 7

    def test_empty_round_trip(self):
        findings, files_scanned = parse_json(render_json([], 0))
        assert findings == []
        assert files_scanned == 0

    def test_unknown_version_is_rejected(self):
        document = json.loads(render_json(FINDINGS, files_scanned=1))
        document["version"] = JSON_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema version"):
            parse_json(json.dumps(document))
