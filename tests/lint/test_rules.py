"""Per-rule fixture snippets: a good tree, a bad tree, a suppressed
tree for each of the five project rules."""

import textwrap

from repro.lint import run_lint
from repro.lint.rules.api_surface import ApiSurfaceRule
from repro.lint.rules.identity_manifest import IdentityManifestRule
from repro.lint.rules.private_poke import PrivatePokeRule
from repro.lint.rules.seed_policy import SeedPolicyRule
from repro.lint.rules.tracker_contract import TrackerContractRule


def write(tmp_path, relpath, source):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def lint(tmp_path, rule):
    findings, _ = run_lint([tmp_path], rules=[rule])
    return findings


class TestSeedPolicy:
    def test_instance_rng_is_fine(self, tmp_path):
        write(tmp_path, "mod.py", """\
            import random

            rng = random.Random(1234)
            value = rng.random()
        """)
        assert lint(tmp_path, SeedPolicyRule) == []

    def test_global_random_call_is_flagged(self, tmp_path):
        write(tmp_path, "mod.py", """\
            import random

            value = random.random()
        """)
        findings = lint(tmp_path, SeedPolicyRule)
        assert [f.rule for f in findings] == ["seed-policy"]
        assert "global RNG" in findings[0].message

    def test_from_import_alias_is_resolved(self, tmp_path):
        write(tmp_path, "mod.py", """\
            from random import shuffle as mix

            mix([1, 2, 3])
        """)
        findings = lint(tmp_path, SeedPolicyRule)
        assert [f.rule for f in findings] == ["seed-policy"]

    def test_numpy_random_is_flagged(self, tmp_path):
        write(tmp_path, "mod.py", """\
            import numpy as np

            draws = np.random.default_rng(0)
        """)
        findings = lint(tmp_path, SeedPolicyRule)
        assert [f.rule for f in findings] == ["seed-policy"]
        assert "pinned RNG streams" in findings[0].message

    def test_unseeded_random_instance_is_flagged(self, tmp_path):
        write(tmp_path, "mod.py", """\
            import random

            rng = random.Random()
        """)
        findings = lint(tmp_path, SeedPolicyRule)
        assert [f.rule for f in findings] == ["seed-policy"]

    def test_wallclock_flagged_only_in_sim_packages(self, tmp_path):
        source = """\
            import time

            def stamp():
                return time.time()
        """
        write(tmp_path, "repro/sim/mod.py", source)
        write(tmp_path, "scripts/bench.py", source)
        findings = lint(tmp_path, SeedPolicyRule)
        assert len(findings) == 1
        assert findings[0].path.endswith("repro/sim/mod.py")

    def test_suppression_comment_silences(self, tmp_path):
        write(tmp_path, "mod.py", """\
            import random

            value = random.random()  # repro-lint: allow[seed-policy] demo
        """)
        assert lint(tmp_path, SeedPolicyRule) == []


class TestIdentityManifest:
    GOOD = """\
        from dataclasses import dataclass

        IDENTITY_MANIFEST = {
            "TrackerSpec": {"identity": ["name"], "excluded": ["debug"]},
        }

        @dataclass(frozen=True)
        class TrackerSpec:
            name: str = "mint"
            debug: bool = False
    """

    def test_fully_classified_dataclass_passes(self, tmp_path):
        write(tmp_path, "specs.py", self.GOOD)
        assert lint(tmp_path, IdentityManifestRule) == []

    def test_missing_manifest_entry_is_flagged(self, tmp_path):
        write(tmp_path, "specs.py", """\
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class TrackerSpec:
                name: str = "mint"
        """)
        findings = lint(tmp_path, IdentityManifestRule)
        assert [f.rule for f in findings] == ["identity-manifest"]
        assert "no IDENTITY_MANIFEST entry" in findings[0].message

    def test_unclassified_field_is_flagged(self, tmp_path):
        write(tmp_path, "specs.py", """\
            from dataclasses import dataclass

            IDENTITY_MANIFEST = {
                "TrackerSpec": {"identity": ["name"], "excluded": []},
            }

            @dataclass(frozen=True)
            class TrackerSpec:
                name: str = "mint"
                depth: int = 4
        """)
        findings = lint(tmp_path, IdentityManifestRule)
        assert len(findings) == 1
        assert "'depth'" in findings[0].message

    def test_stale_manifest_entry_is_flagged(self, tmp_path):
        write(tmp_path, "specs.py", """\
            from dataclasses import dataclass

            IDENTITY_MANIFEST = {
                "TrackerSpec": {"identity": ["name", "gone"], "excluded": []},
            }

            @dataclass(frozen=True)
            class TrackerSpec:
                name: str = "mint"
        """)
        findings = lint(tmp_path, IdentityManifestRule)
        assert len(findings) == 1
        assert "stale" in findings[0].message

    def test_identity_excluded_overlap_is_flagged(self, tmp_path):
        write(tmp_path, "specs.py", """\
            from dataclasses import dataclass

            IDENTITY_MANIFEST = {
                "TrackerSpec": {"identity": ["name"], "excluded": ["name"]},
            }

            @dataclass(frozen=True)
            class TrackerSpec:
                name: str = "mint"
        """)
        findings = lint(tmp_path, IdentityManifestRule)
        assert len(findings) == 1
        assert "both identity and excluded" in findings[0].message

    def test_non_literal_manifest_is_flagged(self, tmp_path):
        write(tmp_path, "specs.py", """\
            from dataclasses import dataclass

            NAMES = ["name"]
            IDENTITY_MANIFEST = {
                "TrackerSpec": {"identity": NAMES, "excluded": []},
            }

            @dataclass(frozen=True)
            class TrackerSpec:
                name: str = "mint"
        """)
        findings = lint(tmp_path, IdentityManifestRule)
        assert len(findings) == 1
        assert "literal dict" in findings[0].message

    def test_suppression_on_class_line(self, tmp_path):
        write(tmp_path, "specs.py", """\
            from dataclasses import dataclass

            @dataclass(frozen=True)
            # repro-lint: allow[identity-manifest] fixture
            class TrackerSpec:
                name: str = "mint"
        """)
        assert lint(tmp_path, IdentityManifestRule) == []

    def test_non_target_dataclass_needs_no_manifest(self, tmp_path):
        write(tmp_path, "other.py", """\
            from dataclasses import dataclass

            @dataclass
            class Unrelated:
                value: int = 0
        """)
        assert lint(tmp_path, IdentityManifestRule) == []


class TestTrackerContract:
    BASE = """\
        class Tracker:
            pseudo_mitigations = 0

            def on_activate_batch(self, rows, counts=None):
                for row in rows:
                    self.on_activate(row)
    """

    def test_registered_tracker_with_declared_counter(self, tmp_path):
        write(tmp_path, "repro/trackers/base.py", self.BASE)
        write(tmp_path, "repro/trackers/registry.py", """\
            from .base import Tracker

            class GoodTracker(Tracker):
                pass

            def _good():
                return GoodTracker()

            def register(name, factory):
                pass

            register("good", _good)
        """)
        assert lint(tmp_path, TrackerContractRule) == []

    def test_registered_tracker_missing_counter(self, tmp_path):
        write(tmp_path, "repro/trackers/base.py", self.BASE)
        write(tmp_path, "repro/trackers/registry.py", """\
            class Freeloader:
                pass

            def _free():
                return Freeloader()

            def register(name, factory):
                pass

            register("free", _free)
        """)
        findings = lint(tmp_path, TrackerContractRule)
        assert [f.rule for f in findings] == ["tracker-contract"]
        assert "pseudo_mitigations" in findings[0].message

    def test_batch_override_touching_global_rng(self, tmp_path):
        write(tmp_path, "repro/trackers/base.py", self.BASE)
        write(tmp_path, "repro/trackers/sampler.py", """\
            import random

            from .base import Tracker

            class Sampler(Tracker):
                def on_activate_batch(self, rows, counts=None):
                    return random.choice(list(rows))
        """)
        findings = lint(tmp_path, TrackerContractRule)
        assert len(findings) == 1
        assert "on_activate_batch" in findings[0].message
        assert findings[0].path.endswith("sampler.py")

    def test_batch_override_on_own_rng_is_fine(self, tmp_path):
        write(tmp_path, "repro/trackers/base.py", self.BASE)
        write(tmp_path, "repro/trackers/sampler.py", """\
            from .base import Tracker

            class Sampler(Tracker):
                def on_activate_batch(self, rows, counts=None):
                    return self.rng.choice(list(rows))
        """)
        assert lint(tmp_path, TrackerContractRule) == []

    def test_unresolvable_factory_is_flagged(self, tmp_path):
        write(tmp_path, "repro/trackers/registry.py", """\
            def register(name, factory):
                pass

            register("ghost", make_ghost)
        """)
        findings = lint(tmp_path, TrackerContractRule)
        assert len(findings) == 1
        assert "neither a factory" in findings[0].message

    def test_suppressed_registration(self, tmp_path):
        write(tmp_path, "repro/trackers/registry.py", """\
            # repro-lint: allow[tracker-contract] fixture
            class Freeloader:
                pass

            def _free():
                return Freeloader()

            def register(name, factory):
                pass

            register("free", _free)
        """)
        findings = lint(tmp_path, TrackerContractRule)
        assert findings == []


class TestPrivatePoke:
    def test_self_writes_are_fine(self, tmp_path):
        write(tmp_path, "mod.py", """\
            class Model:
                def __init__(self):
                    self._state = {}

                def clear(self):
                    self._state = {}
        """)
        assert lint(tmp_path, PrivatePokeRule) == []

    def test_public_attribute_writes_are_fine(self, tmp_path):
        write(tmp_path, "mod.py", """\
            def update(model):
                model.rows = []
        """)
        assert lint(tmp_path, PrivatePokeRule) == []

    def test_external_private_write_is_flagged(self, tmp_path):
        write(tmp_path, "mod.py", """\
            def poke(model):
                model._disturbance = {}
        """)
        findings = lint(tmp_path, PrivatePokeRule)
        assert [f.rule for f in findings] == ["private-poke"]
        assert "model._disturbance" in findings[0].message

    def test_write_through_subscript_is_flagged(self, tmp_path):
        write(tmp_path, "mod.py", """\
            def clear_row(model, row):
                model._disturbance[row] = 0
        """)
        findings = lint(tmp_path, PrivatePokeRule)
        assert len(findings) == 1
        assert "model._disturbance" in findings[0].message

    def test_augmented_and_del_count(self, tmp_path):
        write(tmp_path, "mod.py", """\
            def wobble(model):
                model._count += 1
                del model._cache
        """)
        findings = lint(tmp_path, PrivatePokeRule)
        assert len(findings) == 2

    def test_object_setattr_bypass_is_flagged(self, tmp_path):
        write(tmp_path, "mod.py", """\
            def sneak(model):
                object.__setattr__(model, "_frozen", False)
        """)
        findings = lint(tmp_path, PrivatePokeRule)
        assert len(findings) == 1
        assert "__setattr__" in findings[0].message

    def test_dunder_writes_are_not_private(self, tmp_path):
        write(tmp_path, "mod.py", """\
            def rename(cls):
                cls.__name__ = "Renamed"
        """)
        assert lint(tmp_path, PrivatePokeRule) == []

    def test_suppression_comment_silences(self, tmp_path):
        write(tmp_path, "mod.py", """\
            def sync(sim):
                # repro-lint: allow[private-poke] fixture sync
                sim._consumed = True
        """)
        assert lint(tmp_path, PrivatePokeRule) == []


class TestApiSurface:
    SNAPSHOT = """\
        REPRO = frozenset({"alpha", "beta"})

        SNAPSHOTS = {
            "repro": REPRO,
        }
    """

    def test_matching_surface_passes(self, tmp_path):
        write(tmp_path, "tests/test_api_surface.py", self.SNAPSHOT)
        write(tmp_path, "src/repro/__init__.py", """\
            __all__ = ["alpha", "beta"]
        """)
        assert lint(tmp_path / "src", ApiSurfaceRule) == []

    def test_drifted_surface_is_flagged(self, tmp_path):
        write(tmp_path, "tests/test_api_surface.py", self.SNAPSHOT)
        write(tmp_path, "src/repro/__init__.py", """\
            __all__ = ["alpha", "gamma"]
        """)
        findings = lint(tmp_path / "src", ApiSurfaceRule)
        assert [f.rule for f in findings] == ["api-surface"]
        assert "added ['gamma']" in findings[0].message
        assert "removed ['beta']" in findings[0].message

    def test_missing_snapshot_file_is_flagged(self, tmp_path):
        write(tmp_path, "src/repro/__init__.py", """\
            __all__ = ["alpha"]
        """)
        findings = lint(tmp_path / "src", ApiSurfaceRule)
        assert len(findings) == 1
        assert "cannot locate" in findings[0].message

    def test_dynamic_all_is_flagged(self, tmp_path):
        write(tmp_path, "tests/test_api_surface.py", self.SNAPSHOT)
        write(tmp_path, "src/repro/__init__.py", """\
            __all__ = [name for name in dir() if not name.startswith("_")]
        """)
        findings = lint(tmp_path / "src", ApiSurfaceRule)
        assert len(findings) == 1
        assert "not a literal list" in findings[0].message

    def test_non_target_module_is_ignored(self, tmp_path):
        write(tmp_path, "src/other/__init__.py", """\
            __all__ = ["whatever"]
        """)
        assert lint(tmp_path / "src", ApiSurfaceRule) == []
