"""The repository lints itself clean, and the CLI contract holds.

The self-check is the rule battery's strongest test: every rule runs
against the real tree (100+ modules), so a false positive anywhere in
``src``/``scripts`` fails here before it fails in CI.
"""

import json
from pathlib import Path

from repro.cli import main
from repro.lint import PARSE_RULE_ID, RULE_REGISTRY, parse_json, run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestSelfLint:
    def test_src_and_scripts_are_clean(self):
        findings, files_scanned = run_lint(
            [REPO_ROOT / "src", REPO_ROOT / "scripts"]
        )
        assert findings == [], "\n".join(f.render() for f in findings)
        assert files_scanned > 50

    def test_every_rule_is_registered(self):
        assert set(RULE_REGISTRY) == {
            "api-surface", "identity-manifest", "private-poke",
            "seed-policy", "tracker-contract",
        }
        assert PARSE_RULE_ID not in RULE_REGISTRY


class TestLintCli:
    def test_clean_tree_exits_zero(self, capsys):
        code = main(["lint", str(REPO_ROOT / "src" / "repro" / "lint")])
        out = capsys.readouterr().out
        assert code == 0
        assert "clean" in out

    def test_violation_exits_one_with_rule_and_location(
        self, capsys, tmp_path
    ):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nvalue = random.random()\n")
        code = main(["lint", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "[seed-policy]" in out
        assert "bad.py:2:" in out

    def test_json_format_round_trips(self, capsys, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nvalue = random.random()\n")
        code = main(["lint", str(tmp_path), "--format", "json"])
        out = capsys.readouterr().out
        assert code == 1
        findings, files_scanned = parse_json(out)
        assert files_scanned == 1
        assert [f.rule for f in findings] == ["seed-policy"]
        assert json.loads(out)["version"] == 1

    def test_rules_subset_selection(self, capsys, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import random\nvalue = random.random()\nx = object()\nx._y = 1\n"
        )
        code = main(["lint", str(tmp_path), "--rules", "private-poke"])
        out = capsys.readouterr().out
        assert code == 1
        assert "[private-poke]" in out
        assert "[seed-policy]" not in out

    def test_unknown_rule_exits_two(self, capsys, tmp_path):
        code = main(["lint", str(tmp_path), "--rules", "nonsense"])
        out = capsys.readouterr().out
        assert code == 2
        assert "unknown rule" in out

    def test_missing_path_exits_two(self, capsys, tmp_path):
        code = main(["lint", str(tmp_path / "nope")])
        out = capsys.readouterr().out
        assert code == 2
        assert "no such path" in out

    def test_list_rules(self, capsys):
        code = main(["lint", "--list-rules"])
        out = capsys.readouterr().out
        assert code == 0
        for rule_id in RULE_REGISTRY:
            assert rule_id in out
