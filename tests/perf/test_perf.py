"""Tests for the performance substrate (Fig 16/17, Table VIII)."""

import pytest

from repro.perf.energy import (
    ACT_ENERGY_SHARE,
    DMQ_POWER_W,
    DRAM_POWER_W,
    TRNG_POWER_W,
    mitigation_act_overhead,
    scheme_energy,
    table8,
)
from repro.perf.memctrl import MemorySystemSim, MitigationPolicy
from repro.perf.runner import evaluate_workload, geometric_mean
from repro.perf.workloads import (
    RATE_WORKLOADS,
    Workload,
    mixed_workloads,
    rate_mix,
)

SIM_NS = 400_000.0  # short runs keep the suite fast


class TestWorkloads:
    def test_seventeen_rate_workloads(self):
        assert len(RATE_WORKLOADS) == 17

    def test_seventeen_mixes_of_four(self):
        mixes = mixed_workloads()
        assert len(mixes) == 17
        assert all(len(mix) == 4 for mix in mixes)

    def test_rate_mix_replicates(self):
        mix = rate_mix(RATE_WORKLOADS[0])
        assert len(mix) == 4
        assert len(set(w.name for w in mix)) == 1

    def test_mpki_spans_spec_range(self):
        mpkis = [w.mpki for w in RATE_WORKLOADS]
        assert min(mpkis) < 1.0
        assert max(mpkis) > 30.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Workload("bad", -1.0, 0.5)
        with pytest.raises(ValueError):
            Workload("bad", 1.0, 1.5)


class TestSimulator:
    def test_deterministic_given_seed(self):
        a = MemorySystemSim(rate_mix(RATE_WORKLOADS[3]), seed=5).run(SIM_NS)
        b = MemorySystemSim(rate_mix(RATE_WORKLOADS[3]), seed=5).run(SIM_NS)
        assert a.total_instructions == b.total_instructions

    def test_memory_bound_generates_more_traffic(self):
        heavy = MemorySystemSim(rate_mix(RATE_WORKLOADS[0])).run(SIM_NS)
        light = MemorySystemSim(rate_mix(RATE_WORKLOADS[-1])).run(SIM_NS)
        assert heavy.demand_activations > 5 * light.demand_activations

    def test_refreshes_happen_every_trefi(self):
        result = MemorySystemSim(rate_mix(RATE_WORKLOADS[0])).run(SIM_NS)
        assert result.refreshes == pytest.approx(SIM_NS / 3900.0, abs=2)

    def test_rfm_commands_track_raa(self):
        sim = MemorySystemSim(
            rate_mix(RATE_WORKLOADS[0]), MitigationPolicy("rfm", rfm_th=32)
        )
        result = sim.run(SIM_NS)
        owed = sum(sim._rfm_owed)
        issued = result.rfm_commands + owed
        # Each of the 32 banks may hold an RAA residual below the
        # threshold, so the total can trail demand/32 by up to 32.
        expected = result.demand_activations // 32
        assert 0 <= expected - issued <= 32

    def test_mc_para_issues_drfms(self):
        sim = MemorySystemSim(
            rate_mix(RATE_WORKLOADS[0]),
            MitigationPolicy("mc-para", para_probability=1 / 74),
        )
        result = sim.run(SIM_NS)
        assert result.drfm_commands == pytest.approx(
            result.demand_activations / 74, rel=0.3
        )

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            MitigationPolicy("banhammer")


class TestFig16Shape:
    def test_mint_is_free(self):
        result = evaluate_workload(
            "mcf", rate_mix(RATE_WORKLOADS[0]), sim_time_ns=SIM_NS
        )
        assert result.mint == 1.0

    def test_rfm_ordering(self):
        """RFM16 costs at least as much as RFM32 (2x more commands)."""
        heavy = rate_mix(RATE_WORKLOADS[1])  # lbm: the stress case
        result = evaluate_workload("lbm", heavy, sim_time_ns=SIM_NS)
        assert result.rfm16 <= result.rfm32 + 0.01

    def test_rfm32_near_free(self):
        """Paper: RFM32 slowdown ~0.1-0.2% (deferred into idle slots)."""
        heavy = rate_mix(RATE_WORKLOADS[0])
        result = evaluate_workload("mcf", heavy, sim_time_ns=SIM_NS)
        assert result.rfm32 > 0.97

    def test_light_workloads_unaffected(self):
        light = rate_mix(RATE_WORKLOADS[-1])
        result = evaluate_workload("exch", light, sim_time_ns=SIM_NS)
        assert result.rfm16 > 0.99


class TestFig17Shape:
    def test_mc_para_slower_than_mint(self):
        """Fig 17: blocking DRFMs cost 2-9%; MINT stays ~free."""
        heavy = rate_mix(RATE_WORKLOADS[0])
        result = evaluate_workload(
            "mcf", heavy, sim_time_ns=SIM_NS, include_mc_para=True
        )
        assert result.mc_para < result.mint
        assert result.mc_para < 0.99


class TestEnergy:
    def test_act_overhead_formula(self):
        assert mitigation_act_overhead(1000, 100) == pytest.approx(1.2)

    def test_blast_radius_scales(self):
        assert mitigation_act_overhead(1000, 100, blast_radius=2) == pytest.approx(1.4)

    def test_table8_matches_paper_shape(self):
        """ACT energy 1.06-1.25x, total 1.01-1.03x (Table VIII)."""
        rows = {row.scheme: row for row in table8()}
        assert rows["Base (No Mitig)"].total == pytest.approx(1.0, abs=0.001)
        assert 1.04 <= rows["MINT"].act_energy <= 1.10
        assert 1.05 <= rows["MINT+RFM32"].act_energy <= 1.20
        assert 1.10 <= rows["MINT+RFM16"].act_energy <= 1.30
        for scheme in ("MINT", "MINT+RFM32", "MINT+RFM16"):
            assert rows[scheme].total < 1.04

    def test_auxiliary_power_negligible(self):
        """TRNG + DMQ are four orders of magnitude below DRAM power."""
        assert (TRNG_POWER_W + DMQ_POWER_W) / DRAM_POWER_W < 1e-3

    def test_act_share_is_13_percent(self):
        assert ACT_ENERGY_SHARE == pytest.approx(0.13)

    def test_rejects_zero_demand(self):
        with pytest.raises(ValueError):
            mitigation_act_overhead(0, 1)


class TestGeomean:
    def test_basic(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
