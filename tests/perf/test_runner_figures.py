"""Tests for the figure-level perf runners (Fig 16 / Fig 17 drivers)."""

import pytest

from repro.perf.runner import figure16, figure17
from repro.perf.workloads import RATE_WORKLOADS

SIM_NS = 120_000.0  # tiny slices: these tests check plumbing, not shape


class TestFigure16:
    def test_rate_workloads_only(self):
        results = figure16(sim_time_ns=SIM_NS, include_mixes=False)
        assert len(results) == len(RATE_WORKLOADS)
        assert all(r.mint == 1.0 for r in results)
        assert all(r.mc_para is None for r in results)

    def test_with_mixes(self):
        results = figure16(sim_time_ns=SIM_NS, include_mixes=True)
        assert len(results) == len(RATE_WORKLOADS) + 17
        assert any(r.workload.startswith("mix") for r in results)

    def test_relative_values_positive(self):
        for result in figure16(sim_time_ns=SIM_NS, include_mixes=False):
            assert result.rfm32 > 0.5
            assert result.rfm16 > 0.5


class TestFigure17:
    def test_includes_mc_para(self):
        results = figure17(sim_time_ns=SIM_NS)
        assert len(results) == len(RATE_WORKLOADS)
        assert all(r.mc_para is not None for r in results)

    def test_custom_probability(self):
        gentle = figure17(sim_time_ns=SIM_NS, mc_para_probability=1e-6)
        # With a vanishing DRFM probability the slowdown disappears.
        assert all(r.mc_para > 0.99 for r in gentle)
