"""Standardized Hypothesis settings profiles for the property tests.

Import these instead of sprinkling inline ``@settings(max_examples=...)``
decorators, so test intensity is tiered in one place:

    from tests.property.settings import STANDARD_SETTINGS

    @given(...)
    @STANDARD_SETTINGS
    def test_something(...):
        ...

Tiers:

- ``DETERMINISM_SETTINGS``: 500 examples — seeding/fingerprint tests
  (the reproducibility guarantees the experiment runner rests on)
- ``STATE_MACHINE_SETTINGS``: 200 examples — stateful/multi-step tests
- ``STANDARD_SETTINGS``: 100 examples — regular property tests
- ``SLOW_SETTINGS``: 50 examples — tests that run a simulation inside
- ``QUICK_SETTINGS``: 20 examples — simple validation/rejection tests

All tiers disable the per-example deadline: the suite runs inside
containers and CI runners whose scheduling jitter would otherwise flake
time-based failures.
"""

from hypothesis import settings

DETERMINISM_SETTINGS = settings(max_examples=500, deadline=None)
STATE_MACHINE_SETTINGS = settings(max_examples=200, deadline=None)
STANDARD_SETTINGS = settings(max_examples=100, deadline=None)
SLOW_SETTINGS = settings(max_examples=50, deadline=None)
QUICK_SETTINGS = settings(max_examples=20, deadline=None)
