"""Hypothesis property-based tests on the core invariants."""

import math
import random

from hypothesis import given, settings, strategies as st

from repro.analysis.adaptive import count_distribution
from repro.analysis.saroiu_wolman import (
    approx_failure_probability,
    failure_probability,
    failure_probability_sequence,
)
from repro.core.dmq import DelayedMitigationQueue
from repro.core.mint import MintTracker
from repro.dram.mapping import ScrambledRowMapping
from repro.dram.refresh import RefreshScheduler
from repro.dram.rowstate import RowDisturbanceModel
from repro.trackers.mithril import MithrilTracker


class TestSaroiuWolmanProperties:
    @given(
        n=st.integers(1, 400),
        p=st.floats(0.01, 0.99),
        trh=st.integers(1, 60),
    )
    @settings(max_examples=60, deadline=None)
    def test_probabilities_are_probabilities(self, n, p, trh):
        probs = failure_probability_sequence(n, p, trh)
        assert ((probs >= 0.0) & (probs <= 1.0)).all()

    @given(
        n=st.integers(2, 300),
        p=st.floats(0.01, 0.9),
        trh=st.integers(1, 40),
    )
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_activations(self, n, p, trh):
        """More activation opportunities can only raise failure odds."""
        probs = failure_probability_sequence(n, p, trh)
        assert all(b >= a - 1e-12 for a, b in zip(probs, probs[1:]))

    @given(
        n=st.integers(10, 300),
        p=st.floats(0.01, 0.9),
        trh=st.integers(1, 30),
    )
    @settings(max_examples=60, deadline=None)
    def test_approx_upper_bounds_exact(self, n, p, trh):
        exact = failure_probability(n, p, trh)
        approx = approx_failure_probability(n, p, trh)
        assert approx >= exact - 1e-12

    @given(
        n=st.integers(10, 200),
        p=st.floats(0.01, 0.9),
    )
    @settings(max_examples=40, deadline=None)
    def test_monotone_decreasing_in_trh(self, n, p):
        # Tolerance covers float accumulation when P saturates near 1.
        values = [failure_probability(n, p, t) for t in (2, 5, 10)]
        assert values[0] >= values[1] - 1e-9
        assert values[1] >= values[2] - 1e-9


class TestMarkovProperties:
    @given(mp=st.integers(1, 500), denom=st.integers(2, 200))
    @settings(max_examples=60, deadline=None)
    def test_distribution_normalised(self, mp, denom):
        dist = count_distribution(mp, 1.0 / denom)
        assert math.isclose(dist.sum(), 1.0, rel_tol=1e-9)

    @given(mp=st.integers(2, 300), denom=st.integers(2, 100))
    @settings(max_examples=40, deadline=None)
    def test_tail_identity(self, mp, denom):
        p = 1.0 / denom
        dist = count_distribution(mp, p)
        a0 = mp // 2
        assert math.isclose(dist[a0:].sum(), (1 - p) ** a0, rel_tol=1e-9)


class TestMintInvariants:
    @given(
        seed=st.integers(0, 10_000),
        max_act=st.integers(1, 73),
        intervals=st.integers(1, 30),
    )
    @settings(max_examples=60, deadline=None)
    def test_at_most_one_mitigation_per_refresh(self, seed, max_act, intervals):
        tracker = MintTracker(max_act=max_act, rng=random.Random(seed))
        for _ in range(intervals):
            for row in range(max_act):
                tracker.on_activate(row)
            assert len(tracker.on_refresh()) <= 1

    @given(seed=st.integers(0, 10_000), max_act=st.integers(1, 73))
    @settings(max_examples=60, deadline=None)
    def test_full_window_always_selects_without_transitive(self, seed, max_act):
        """Guaranteed selection: the no-non-selection property (§V-A)."""
        tracker = MintTracker(
            max_act=max_act, transitive=False, rng=random.Random(seed)
        )
        tracker.on_refresh()
        for _ in range(max_act):
            tracker.on_activate(7)
        requests = tracker.on_refresh()
        assert len(requests) == 1
        assert requests[0].row == 7

    @given(seed=st.integers(0, 10_000), max_act=st.integers(1, 73))
    @settings(max_examples=60, deadline=None)
    def test_selected_row_was_activated(self, seed, max_act):
        tracker = MintTracker(max_act=max_act, rng=random.Random(seed))
        rows = list(range(100, 100 + max_act))
        for _ in range(5):
            for row in rows:
                tracker.on_activate(row)
            for request in tracker.on_refresh():
                assert request.row in rows


class TestDmqInvariants:
    @given(
        seed=st.integers(0, 1000),
        max_act=st.integers(1, 16),
        depth=st.integers(1, 8),
        acts=st.integers(0, 400),
    )
    @settings(max_examples=60, deadline=None)
    def test_queue_never_exceeds_depth(self, seed, max_act, depth, acts):
        inner = MintTracker(max_act=max_act, rng=random.Random(seed))
        dmq = DelayedMitigationQueue(inner, max_act=max_act, depth=depth)
        for i in range(acts):
            dmq.on_activate(i % 7)
            assert len(dmq.queue) <= depth
        dmq.on_refresh()
        assert len(dmq.queue) <= depth


class TestSchedulerInvariants:
    @given(pattern=st.lists(st.booleans(), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_refreshes_conserved(self, pattern):
        scheduler = RefreshScheduler()
        for want in pattern:
            scheduler.tick(want_postpone=want)
        scheduler.flush()
        assert scheduler.total_refreshes == len(pattern)

    @given(pattern=st.lists(st.booleans(), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_debt_never_exceeds_ceiling(self, pattern):
        scheduler = RefreshScheduler(max_postponed=4)
        for want in pattern:
            scheduler.tick(want_postpone=want)
            assert scheduler.postponed <= 4


class TestDisturbanceInvariants:
    @given(
        acts=st.lists(st.integers(0, 63), min_size=1, max_size=200),
        trh=st.integers(1, 50),
    )
    @settings(max_examples=60, deadline=None)
    def test_peak_dominates_current(self, acts, trh):
        model = RowDisturbanceModel(num_rows=64, trh=trh)
        for row in acts:
            model.activate(row)
        for row in range(64):
            assert model.peak_disturbance(row) >= model.disturbance(row)

    @given(acts=st.lists(st.integers(1, 62), min_size=1, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_disturbance_conservation(self, acts):
        """Every interior activation deposits exactly 2 units (1/side),
        minus whatever self-restoration removes — so the total is
        bounded by 2 x activations."""
        model = RowDisturbanceModel(num_rows=64, trh=10_000)
        for row in acts:
            model.activate(row)
        total = sum(model.disturbance(r) for r in range(64))
        assert total <= 2 * len(acts)


class TestMappingInvariants:
    @given(
        num_rows=st.integers(2, 4096),
        key=st.integers(0, 1 << 32),
    )
    @settings(max_examples=60, deadline=None)
    def test_scrambled_mapping_is_bijective(self, num_rows, key):
        mapping = ScrambledRowMapping(num_rows, key=key)
        sample = range(0, num_rows, max(1, num_rows // 64))
        for row in sample:
            assert mapping.to_logical(mapping.to_physical(row)) == row


class TestMithrilInvariants:
    @given(
        acts=st.lists(st.integers(0, 30), min_size=1, max_size=300),
        entries=st.integers(1, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_table_never_exceeds_entries(self, acts, entries):
        tracker = MithrilTracker(num_entries=entries)
        for row in acts:
            tracker.on_activate(row)
        assert len(tracker.counters) <= entries

    @given(acts=st.lists(st.integers(0, 5), min_size=1, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_space_saving_overestimates(self, acts):
        """A tracked row's counter >= its true activation count."""
        tracker = MithrilTracker(num_entries=3)
        true_counts = {}
        for row in acts:
            tracker.on_activate(row)
            true_counts[row] = true_counts.get(row, 0) + 1
        for row, count in tracker.counters.items():
            assert count >= 0
        # Rows still tracked since their first insertion cannot be
        # undercounted; verify against a row inserted at the start and
        # never evicted (if any) — the weaker global check:
        total_tracked = sum(tracker.counters.values())
        assert total_tracked <= len(acts) + 3 * len(acts)
