"""Hypothesis property-based tests on the core invariants.

Test intensity comes from the tiered profiles in
``tests/property/settings.py`` (QUICK/STANDARD/SLOW/DETERMINISM);
don't add inline ``@settings`` decorators here.
"""

import math
import random

from hypothesis import given, strategies as st

from tests.property.settings import (
    DETERMINISM_SETTINGS,
    QUICK_SETTINGS,
    SLOW_SETTINGS,
    STANDARD_SETTINGS,
)

from repro.analysis.adaptive import count_distribution
from repro.analysis.saroiu_wolman import (
    approx_failure_probability,
    failure_probability,
    failure_probability_sequence,
)
from repro.core.dmq import DelayedMitigationQueue
from repro.core.mint import MintTracker
from repro.dram.mapping import ScrambledRowMapping
from repro.dram.refresh import RefreshScheduler
from repro.dram.rowstate import RowDisturbanceModel
from repro.trackers.mithril import MithrilTracker


class TestSaroiuWolmanProperties:
    @given(
        n=st.integers(1, 400),
        p=st.floats(0.01, 0.99),
        trh=st.integers(1, 60),
    )
    @STANDARD_SETTINGS
    def test_probabilities_are_probabilities(self, n, p, trh):
        probs = failure_probability_sequence(n, p, trh)
        assert ((probs >= 0.0) & (probs <= 1.0)).all()

    @given(
        n=st.integers(2, 300),
        p=st.floats(0.01, 0.9),
        trh=st.integers(1, 40),
    )
    @STANDARD_SETTINGS
    def test_monotone_in_activations(self, n, p, trh):
        """More activation opportunities can only raise failure odds."""
        probs = failure_probability_sequence(n, p, trh)
        assert all(b >= a - 1e-12 for a, b in zip(probs, probs[1:]))

    @given(
        n=st.integers(10, 300),
        p=st.floats(0.01, 0.9),
        trh=st.integers(1, 30),
    )
    @STANDARD_SETTINGS
    def test_approx_upper_bounds_exact(self, n, p, trh):
        exact = failure_probability(n, p, trh)
        approx = approx_failure_probability(n, p, trh)
        assert approx >= exact - 1e-12

    @given(
        n=st.integers(10, 200),
        p=st.floats(0.01, 0.9),
    )
    @SLOW_SETTINGS
    def test_monotone_decreasing_in_trh(self, n, p):
        # Tolerance covers float accumulation when P saturates near 1.
        values = [failure_probability(n, p, t) for t in (2, 5, 10)]
        assert values[0] >= values[1] - 1e-9
        assert values[1] >= values[2] - 1e-9


class TestMarkovProperties:
    @given(mp=st.integers(1, 500), denom=st.integers(2, 200))
    @STANDARD_SETTINGS
    def test_distribution_normalised(self, mp, denom):
        dist = count_distribution(mp, 1.0 / denom)
        assert math.isclose(dist.sum(), 1.0, rel_tol=1e-9)

    @given(mp=st.integers(2, 300), denom=st.integers(2, 100))
    @SLOW_SETTINGS
    def test_tail_identity(self, mp, denom):
        p = 1.0 / denom
        dist = count_distribution(mp, p)
        a0 = mp // 2
        assert math.isclose(dist[a0:].sum(), (1 - p) ** a0, rel_tol=1e-9)


class TestMintInvariants:
    @given(
        seed=st.integers(0, 10_000),
        max_act=st.integers(1, 73),
        intervals=st.integers(1, 30),
    )
    @STANDARD_SETTINGS
    def test_at_most_one_mitigation_per_refresh(self, seed, max_act, intervals):
        tracker = MintTracker(max_act=max_act, rng=random.Random(seed))
        for _ in range(intervals):
            for row in range(max_act):
                tracker.on_activate(row)
            assert len(tracker.on_refresh()) <= 1

    @given(seed=st.integers(0, 10_000), max_act=st.integers(1, 73))
    @STANDARD_SETTINGS
    def test_full_window_always_selects_without_transitive(self, seed, max_act):
        """Guaranteed selection: the no-non-selection property (§V-A)."""
        tracker = MintTracker(
            max_act=max_act, transitive=False, rng=random.Random(seed)
        )
        tracker.on_refresh()
        for _ in range(max_act):
            tracker.on_activate(7)
        requests = tracker.on_refresh()
        assert len(requests) == 1
        assert requests[0].row == 7

    @given(seed=st.integers(0, 10_000), max_act=st.integers(1, 73))
    @STANDARD_SETTINGS
    def test_selected_row_was_activated(self, seed, max_act):
        tracker = MintTracker(max_act=max_act, rng=random.Random(seed))
        rows = list(range(100, 100 + max_act))
        for _ in range(5):
            for row in rows:
                tracker.on_activate(row)
            for request in tracker.on_refresh():
                assert request.row in rows


class TestDmqInvariants:
    @given(
        seed=st.integers(0, 1000),
        max_act=st.integers(1, 16),
        depth=st.integers(1, 8),
        acts=st.integers(0, 400),
    )
    @STANDARD_SETTINGS
    def test_queue_never_exceeds_depth(self, seed, max_act, depth, acts):
        inner = MintTracker(max_act=max_act, rng=random.Random(seed))
        dmq = DelayedMitigationQueue(inner, max_act=max_act, depth=depth)
        for i in range(acts):
            dmq.on_activate(i % 7)
            assert len(dmq.queue) <= depth
        dmq.on_refresh()
        assert len(dmq.queue) <= depth


class TestSchedulerInvariants:
    @given(pattern=st.lists(st.booleans(), min_size=1, max_size=200))
    @STANDARD_SETTINGS
    def test_refreshes_conserved(self, pattern):
        scheduler = RefreshScheduler()
        for want in pattern:
            scheduler.tick(want_postpone=want)
        scheduler.flush()
        assert scheduler.total_refreshes == len(pattern)

    @given(pattern=st.lists(st.booleans(), min_size=1, max_size=200))
    @STANDARD_SETTINGS
    def test_debt_never_exceeds_ceiling(self, pattern):
        scheduler = RefreshScheduler(max_postponed=4)
        for want in pattern:
            scheduler.tick(want_postpone=want)
            assert scheduler.postponed <= 4


class TestDisturbanceInvariants:
    @given(
        acts=st.lists(st.integers(0, 63), min_size=1, max_size=200),
        trh=st.integers(1, 50),
    )
    @STANDARD_SETTINGS
    def test_peak_dominates_current(self, acts, trh):
        model = RowDisturbanceModel(num_rows=64, trh=trh)
        for row in acts:
            model.activate(row)
        for row in range(64):
            assert model.peak_disturbance(row) >= model.disturbance(row)

    @given(acts=st.lists(st.integers(1, 62), min_size=1, max_size=100))
    @STANDARD_SETTINGS
    def test_disturbance_conservation(self, acts):
        """Every interior activation deposits exactly 2 units (1/side),
        minus whatever self-restoration removes — so the total is
        bounded by 2 x activations."""
        model = RowDisturbanceModel(num_rows=64, trh=10_000)
        for row in acts:
            model.activate(row)
        total = sum(model.disturbance(r) for r in range(64))
        assert total <= 2 * len(acts)


class TestMappingInvariants:
    @given(
        num_rows=st.integers(2, 4096),
        key=st.integers(0, 1 << 32),
    )
    @STANDARD_SETTINGS
    def test_scrambled_mapping_is_bijective(self, num_rows, key):
        mapping = ScrambledRowMapping(num_rows, key=key)
        sample = range(0, num_rows, max(1, num_rows // 64))
        for row in sample:
            assert mapping.to_logical(mapping.to_physical(row)) == row


class TestMithrilInvariants:
    @given(
        acts=st.lists(st.integers(0, 30), min_size=1, max_size=300),
        entries=st.integers(1, 8),
    )
    @STANDARD_SETTINGS
    def test_table_never_exceeds_entries(self, acts, entries):
        tracker = MithrilTracker(num_entries=entries)
        for row in acts:
            tracker.on_activate(row)
        assert len(tracker.counters) <= entries

    @given(acts=st.lists(st.integers(0, 5), min_size=1, max_size=100))
    @STANDARD_SETTINGS
    def test_space_saving_overestimates(self, acts):
        """A tracked row's counter >= its true activation count."""
        tracker = MithrilTracker(num_entries=3)
        true_counts = {}
        for row in acts:
            tracker.on_activate(row)
            true_counts[row] = true_counts.get(row, 0) + 1
        for row, count in tracker.counters.items():
            assert count >= 0
        # Rows still tracked since their first insertion cannot be
        # undercounted; verify against a row inserted at the start and
        # never evicted (if any) — the weaker global check:
        total_tracked = sum(tracker.counters.values())
        assert total_tracked <= len(acts) + 3 * len(acts)


class TestSeedingDeterminism:
    """The reproducibility layer the parallel runner is built on."""

    @given(
        name=st.text(min_size=0, max_size=20),
        seed=st.integers(0, 2**63 - 1),
        knob=st.integers(-1000, 1000),
    )
    @DETERMINISM_SETTINGS
    def test_stable_seed_is_a_pure_function(self, name, seed, knob):
        from repro.sim.seeding import stable_seed

        assert stable_seed(name, seed, {"knob": knob}) == stable_seed(
            name, seed, {"knob": knob}
        )

    @given(
        a=st.integers(-100, 100),
        b=st.integers(-100, 100),
    )
    @DETERMINISM_SETTINGS
    def test_canonical_json_ignores_dict_order(self, a, b):
        from repro.sim.seeding import canonical_json

        assert canonical_json({"a": a, "b": b}) == canonical_json(
            {"b": b, "a": a}
        )

    @given(seed=st.integers(0, 2**32), extra=st.integers(1, 2**32))
    @DETERMINISM_SETTINGS
    def test_distinct_coordinates_distinct_seeds(self, seed, extra):
        from repro.sim.seeding import stable_seed

        assert stable_seed("w", seed) != stable_seed("w", seed + extra)


class TestBatchOracleEquivalence:
    """activate_many is the engine's hot path; it must be activation-
    for-activation equivalent to the scalar oracle API."""

    @given(
        acts=st.lists(st.integers(0, 63), min_size=1, max_size=150),
        trh=st.integers(1, 40),
        blast_radius=st.integers(1, 2),
    )
    @STANDARD_SETTINGS
    def test_matches_sequential_activates(self, acts, trh, blast_radius):
        batched = RowDisturbanceModel(
            num_rows=64, trh=trh, blast_radius=blast_radius
        )
        scalar = RowDisturbanceModel(
            num_rows=64, trh=trh, blast_radius=blast_radius
        )
        batched.activate_many(acts, time_ns=7.0)
        for row in acts:
            scalar.activate(row, time_ns=7.0)
        assert batched._disturbance == scalar._disturbance
        assert batched._peak == scalar._peak
        assert [
            (f.row, f.disturbance, f.time_ns) for f in batched.flips
        ] == [(f.row, f.disturbance, f.time_ns) for f in scalar.flips]


class TestValidationRejections:
    @given(distance=st.integers(-10, 0))
    @QUICK_SETTINGS
    def test_mitigation_distance_must_be_positive(self, distance):
        import pytest

        from repro.trackers.base import MitigationRequest

        with pytest.raises(ValueError):
            MitigationRequest(row=1, distance=distance)

    @given(num_rows=st.integers(-5, 0))
    @QUICK_SETTINGS
    def test_oracle_rejects_empty_bank(self, num_rows):
        import pytest

        with pytest.raises(ValueError):
            RowDisturbanceModel(num_rows=num_rows, trh=10)
