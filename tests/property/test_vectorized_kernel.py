"""Property pins for the vectorized activation kernel.

The kernel's contract is *exact* equivalence with the scalar path, not
statistical similarity: the dense NumPy oracle must reproduce the
sparse dict oracle event for event (disturbance vectors, peaks, flip
streams), every registry tracker's ``on_activate_batch`` must be
indistinguishable from repeated ``on_activate`` (including RNG
consumption), and the vectorized engine must emit bit-identical
``RankSimResult``s. Hypothesis drives adversarial shapes through all
three layers: adjacent aggressors (the aggressor/victim interleavings
the vector fast path must bail on), thresholds low enough to flip,
table-overflow act streams, and mixed batch/scalar call sequences.
"""

import json
from dataclasses import asdict

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.dram.rowstate import DenseRowDisturbanceModel, RowDisturbanceModel
from repro.sim.engine import EngineConfig, RankSimulator
from repro.sim.trace import RankInterval, RankTrace
from repro.trackers.registry import available_trackers, make_tracker

from tests.property.settings import SLOW_SETTINGS, STANDARD_SETTINGS

NUM_ROWS = 64

# Batches deliberately include out-of-range rows (legal no-op targets),
# adjacent rows, and repeats.
batches = st.lists(
    st.lists(st.integers(-2, NUM_ROWS + 2), min_size=0, max_size=60),
    min_size=1,
    max_size=6,
)


def _flip_stream(model):
    return [(f.row, f.disturbance, f.time_ns) for f in model.flips]


class TestOracleBackendEquivalence:
    """sparse dict == dense NumPy, bit for bit, through mixed op streams."""

    @given(
        batch_list=batches,
        trh=st.one_of(st.integers(1, 30), st.just(10**9)),
        ops=st.lists(st.integers(0, 3), min_size=0, max_size=6),
    )
    @STANDARD_SETTINGS
    def test_disturbance_peak_and_flip_streams_match(
        self, batch_list, trh, ops
    ):
        sparse = RowDisturbanceModel(NUM_ROWS, trh, backend="sparse")
        dense = RowDisturbanceModel(NUM_ROWS, trh, backend="dense")
        assert isinstance(dense, DenseRowDisturbanceModel)
        for index, batch in enumerate(batch_list):
            time_ns = float(index)
            sparse.activate_many(batch, time_ns)
            dense.activate_many(
                np.asarray(batch, dtype=np.intp), time_ns
            )
            op = ops[index % len(ops)] if ops else 0
            if op == 1 and batch:
                sparse.mitigate(batch[0], time_ns)
                dense.mitigate(batch[0], time_ns)
            elif op == 2:
                sparse.refresh_range(index * 4, index * 4 + 8, time_ns)
                dense.refresh_range(index * 4, index * 4 + 8, time_ns)
            elif op == 3:
                sparse.auto_refresh_all(time_ns)
                dense.auto_refresh_all(time_ns)
        for row in range(-1, NUM_ROWS + 1):
            assert sparse.disturbance(row) == dense.disturbance(row)
            assert sparse.peak_disturbance(row) == dense.peak_disturbance(row)
        assert _flip_stream(sparse) == _flip_stream(dense)
        assert sparse.max_disturbance() == dense.max_disturbance()
        assert sparse.most_disturbed_row() == dense.most_disturbed_row()
        assert sorted(sparse.disturbed_rows()) == dense.disturbed_rows()

    @given(
        batch=st.lists(st.integers(0, NUM_ROWS - 1), min_size=1, max_size=80),
        trh=st.integers(1, 25),
        blast_radius=st.integers(1, 2),
    )
    @STANDARD_SETTINGS
    def test_batch_equals_sequential_activates_on_dense(
        self, batch, trh, blast_radius
    ):
        """Dense activate_many == per-act activate (the scalar pin the
        sparse backend already carries, replayed on the array backend)."""
        batched = RowDisturbanceModel(
            NUM_ROWS, trh, blast_radius=blast_radius, backend="dense"
        )
        sequential = RowDisturbanceModel(
            NUM_ROWS, trh, blast_radius=blast_radius, backend="dense"
        )
        batched.activate_many(np.asarray(batch, dtype=np.intp), time_ns=3.0)
        for row in batch:
            sequential.activate(row, time_ns=3.0)
        for row in range(NUM_ROWS):
            assert batched.disturbance(row) == sequential.disturbance(row)
            assert batched.peak_disturbance(row) == sequential.peak_disturbance(
                row
            )
        assert _flip_stream(batched) == _flip_stream(sequential)


class TestTrackerBatchEquivalence:
    """on_activate_batch == repeated on_activate for every registry
    tracker, including RNG stream consumption and refresh boundaries."""

    @pytest.mark.parametrize("name", available_trackers())
    @given(
        batch_list=st.lists(
            st.lists(st.integers(0, 40), min_size=0, max_size=90),
            min_size=1,
            max_size=4,
        ),
        seed=st.integers(0, 2**20),
        with_counts=st.booleans(),
        entries=st.integers(1, 8),
    )
    @SLOW_SETTINGS
    def test_batch_equals_scalar_stream(
        self, name, batch_list, seed, with_counts, entries
    ):
        scalar = make_tracker(name, seed=seed)
        batched = make_tracker(name, seed=seed)
        # Shrink the counter-table trackers so overflow/eviction paths
        # (where the batch fast paths must fall back to the scalar
        # loop) are reachable within a few small batches.
        for tracker in (scalar, batched):
            if hasattr(tracker, "num_entries"):
                tracker.num_entries = entries
        for index, batch in enumerate(batch_list):
            for row in batch:
                scalar.on_activate(row)
            rows = np.asarray(batch, dtype=np.intp)
            counts = None
            if with_counts and batch:
                uniq, first, cnt = np.unique(
                    rows, return_index=True, return_counts=True
                )
                order = np.argsort(first, kind="stable")
                counts = (uniq[order], cnt[order])
            batched.on_activate_batch(rows, counts)
            if index % 2 == 1:
                assert scalar.on_refresh() == batched.on_refresh()
        assert scalar.on_refresh() == batched.on_refresh()
        scalar_table = getattr(scalar, "counters", None)
        if scalar_table is not None:
            assert dict(scalar_table) == dict(batched.counters)


class _NaiveGraphene:
    """The pre-offset Misra-Gries reference: decrement-all on overflow.

    Deliberately the seed implementation, kept verbatim as the oracle
    for the lazy global-offset rewrite."""

    def __init__(self, num_entries: int, mitigation_threshold: int) -> None:
        self.num_entries = num_entries
        self.mitigation_threshold = mitigation_threshold
        self.counters: dict[int, int] = {}
        self.pending: list[int] = []

    def on_activate(self, row: int) -> None:
        if row in self.counters:
            self.counters[row] += 1
        elif len(self.counters) < self.num_entries:
            self.counters[row] = 1
        else:
            for key in list(self.counters):
                self.counters[key] -= 1
                if self.counters[key] <= 0:
                    del self.counters[key]
            return
        if self.counters[row] >= self.mitigation_threshold:
            del self.counters[row]
            self.pending.append(row)


class TestGrapheneOffsetRegression:
    """The O(1)-amortized offset table matches the naive decrement-all
    implementation row for row, through overflow and threshold trips."""

    @given(
        acts=st.lists(st.integers(0, 30), min_size=0, max_size=400),
        entries=st.integers(1, 6),
        batched=st.booleans(),
    )
    @STANDARD_SETTINGS
    def test_table_contents_match_naive(self, acts, entries, batched):
        from repro.trackers.graphene import GrapheneTracker

        tracker = GrapheneTracker(trh=40, acts_per_refw=100)  # threshold 10
        tracker.num_entries = entries
        naive = _NaiveGraphene(entries, tracker.mitigation_threshold)
        if batched:
            # Feed in engine-sized chunks through the batch entry point.
            for start in range(0, len(acts), 73):
                tracker.on_activate_batch(
                    np.asarray(acts[start : start + 73], dtype=np.intp)
                )
        else:
            for row in acts:
                tracker.on_activate(row)
        for row in acts:
            naive.on_activate(row)
        assert tracker.counters == naive.counters
        assert [req.row for req in tracker.drain()] == naive.pending
        assert tracker.mitigations_issued == len(naive.pending)


class TestDmqBatchEquivalence:
    """The DMQ wrapper chunks batches at pseudo-refresh boundaries
    exactly as the scalar stream would fall across them."""

    @given(
        batch_list=st.lists(
            st.lists(st.integers(0, 30), min_size=0, max_size=200),
            min_size=1,
            max_size=4,
        ),
        inner=st.sampled_from(["mint", "para", "graphene"]),
        seed=st.integers(0, 2**20),
        max_act=st.integers(1, 73),
    )
    @SLOW_SETTINGS
    def test_batch_equals_scalar_stream(self, batch_list, inner, seed, max_act):
        scalar = make_tracker(inner, seed=seed, dmq=True, max_act=max_act)
        batched = make_tracker(inner, seed=seed, dmq=True, max_act=max_act)
        for index, batch in enumerate(batch_list):
            for row in batch:
                scalar.on_activate(row)
            batched.on_activate_batch(np.asarray(batch, dtype=np.intp))
            assert scalar.num_acts == batched.num_acts
            assert scalar.pseudo_mitigations == batched.pseudo_mitigations
            assert list(scalar.queue) == list(batched.queue)
            if index % 2 == 1:
                assert scalar.on_refresh() == batched.on_refresh()
        assert scalar.on_refresh() == batched.on_refresh()


class TestEngineKernelEquivalence:
    """scalar engine == vectorized engine, bit for bit."""

    @given(
        tracker=st.sampled_from(
            ["mint", "para", "graphene", "prac", "mithril", "none"]
        ),
        num_banks=st.integers(1, 3),
        trh=st.sampled_from([5, 40, 10**9]),
        seed=st.integers(0, 2**20),
        interval_specs=st.lists(
            st.tuples(
                st.lists(
                    st.tuples(st.integers(0, 2), st.integers(0, 2047)),
                    min_size=0,
                    max_size=40,
                ),
                st.booleans(),
            ),
            min_size=1,
            max_size=8,
        ),
        allow_postponement=st.booleans(),
    )
    @SLOW_SETTINGS
    def test_rank_sim_results_bit_identical(
        self,
        tracker,
        num_banks,
        trh,
        seed,
        interval_specs,
        allow_postponement,
    ):
        from repro.trackers.registry import bank_tracker_factory

        trace = RankTrace(
            name="prop",
            intervals=[
                RankInterval(
                    tuple((bank % num_banks, row) for bank, row in acts),
                    postpone,
                )
                for acts, postpone in interval_specs
            ],
        )
        results = []
        for vectorized in (False, True):
            simulator = RankSimulator(
                bank_tracker_factory(tracker, base_seed=seed),
                EngineConfig(
                    num_banks=num_banks,
                    trh=trh,
                    num_rows=2048,
                    allow_postponement=allow_postponement,
                    validate_budget=False,
                    vectorized=vectorized,
                ),
            )
            results.append(simulator.run(trace))
        scalar_result, vector_result = results
        assert json.dumps(asdict(scalar_result), sort_keys=True) == json.dumps(
            asdict(vector_result), sort_keys=True
        )


class TestFusedChannelEquivalence:
    """fused kernel == lockstep march == scalar engine, bit for bit.

    The fused channel tier reorders freely across (rank, bank) units
    and falls back to the per-bank paths for anything order-sensitive
    within a unit, so its contract is exact equivalence with both the
    per-rank lockstep march and the fully scalar engine — across every
    registry tracker, rank count, streamed and materialized input,
    empty intervals, and flip-heavy thresholds.
    """

    @given(
        tracker=st.sampled_from(
            ["mint", "para", "graphene", "prac", "mithril", "protrr", "none"]
        ),
        num_ranks=st.integers(1, 3),
        num_banks=st.integers(1, 3),
        trh=st.sampled_from([5, 40, 10**9]),
        seed=st.integers(0, 2**20),
        streamed=st.booleans(),
        allow_postponement=st.booleans(),
        rank_specs=st.lists(  # one list of interval specs per rank
            st.lists(
                st.tuples(
                    st.lists(
                        st.tuples(
                            st.integers(0, 2), st.integers(-2, NUM_ROWS + 2)
                        ),
                        min_size=0,
                        max_size=30,
                    ),
                    st.booleans(),
                ),
                min_size=0,
                max_size=6,
            ),
            min_size=1,
            max_size=3,
        ),
    )
    @SLOW_SETTINGS
    def test_channel_results_bit_identical(
        self,
        tracker,
        num_ranks,
        num_banks,
        trh,
        seed,
        streamed,
        allow_postponement,
        rank_specs,
    ):
        from dataclasses import replace

        from repro.sim.engine import ChannelSimulator
        from repro.sim.trace import ChannelTrace, MaterializedStream
        from repro.trackers.registry import channel_tracker_factory

        per_rank = {}
        for rank, specs in enumerate(rank_specs[:num_ranks]):
            trace = RankTrace(
                name=f"r{rank}",
                intervals=[
                    RankInterval(
                        tuple((bank % num_banks, row) for bank, row in acts),
                        postpone,
                    )
                    for acts, postpone in specs
                ],
            )
            per_rank[rank] = (
                MaterializedStream(trace) if streamed else trace
            )
        channel = ChannelTrace(name="prop", per_rank=per_rank)
        base = EngineConfig(
            num_banks=num_banks,
            num_ranks=num_ranks,
            trh=trh,
            num_rows=NUM_ROWS,
            allow_postponement=allow_postponement,
            validate_budget=False,
            refi_per_refw=8,
        )
        outputs = []
        for overrides in (
            dict(fused=True, vectorized=True),
            dict(fused=False, vectorized=True),
            dict(fused=False, vectorized=False),
        ):
            simulator = ChannelSimulator(
                channel_tracker_factory(tracker, seed=seed),
                replace(base, **overrides),
            )
            result = simulator.run(channel)
            outputs.append(json.dumps(asdict(result), sort_keys=True))
        assert outputs[0] == outputs[1] == outputs[2]


def _march_providers():
    """Compiled march providers runnable on this host; the interpreted
    reference is always one of them."""
    from repro import kernels
    from repro.kernels import cext

    names = []
    if kernels.HAVE_NUMBA:
        names.append("numba")
    if cext.available():
        names.append("cext")
    names.append("interpreted")
    return names


class TestCompiledMarchEquivalence:
    """compiled march == fused == lockstep == scalar, bit for bit.

    The compiled tier only engages on runs of consecutive tREFIs that
    replay the same interval objects, so these pins drive *cyclic*
    channel schedules (each rank replays a couple of shared intervals)
    and lower the kernel's minimum run length to 1 — every qualifying
    step goes through the compiled call, including single-step marches,
    flip-safety bails, and mid-run plan switches. Every available
    provider must agree with all three pure-Python engines.
    """

    @pytest.mark.parametrize("provider", _march_providers())
    @given(
        tracker=st.sampled_from(
            ["mint", "para", "graphene", "prac", "mithril", "protrr", "none"]
        ),
        num_ranks=st.integers(1, 3),
        num_banks=st.integers(1, 3),
        trh=st.sampled_from([5, 40, 10**9]),
        seed=st.integers(0, 2**20),
        streamed=st.booleans(),
        allow_postponement=st.booleans(),
        pattern_specs=st.lists(  # a short pattern of interval specs...
            st.tuples(
                st.lists(
                    st.tuples(
                        st.integers(0, 2), st.integers(-2, NUM_ROWS + 2)
                    ),
                    min_size=0,
                    max_size=20,
                ),
                st.booleans(),
            ),
            min_size=1,
            max_size=3,
        ),
        cycles=st.integers(1, 12),  # ...each rank replays this often
    )
    @SLOW_SETTINGS
    def test_channel_results_bit_identical_across_backends(
        self,
        provider,
        tracker,
        num_ranks,
        num_banks,
        trh,
        seed,
        streamed,
        allow_postponement,
        pattern_specs,
        cycles,
    ):
        from dataclasses import replace

        from repro.kernels import forced_provider
        from repro.sim.engine import ChannelSimulator
        from repro.sim.trace import (
            ChannelTrace,
            CycleStream,
            MaterializedStream,
        )
        from repro.trackers.registry import channel_tracker_factory

        pattern = tuple(
            RankInterval(
                tuple((bank % num_banks, row) for bank, row in acts),
                postpone,
            )
            for acts, postpone in pattern_specs
        )
        count = len(pattern) * cycles

        def make_channel():
            per_rank = {}
            for rank in range(num_ranks):
                if streamed:
                    per_rank[rank] = CycleStream(
                        f"r{rank}", pattern, count
                    )
                else:
                    per_rank[rank] = RankTrace(
                        name=f"r{rank}",
                        intervals=list(pattern) * cycles,
                    )
            return ChannelTrace(name="prop-cycle", per_rank=per_rank)

        base = EngineConfig(
            num_banks=num_banks,
            num_ranks=num_ranks,
            trh=trh,
            num_rows=NUM_ROWS,
            allow_postponement=allow_postponement,
            validate_budget=False,
            refi_per_refw=8,
        )
        outputs = []
        for overrides in (
            dict(fused=True, vectorized=True, backend="compiled"),
            dict(fused=True, vectorized=True, backend="numpy"),
            dict(fused=False, vectorized=True),
            dict(fused=False, vectorized=False),
        ):
            with forced_provider(provider):
                simulator = ChannelSimulator(
                    channel_tracker_factory(tracker, seed=seed),
                    replace(base, **overrides),
                )
                if simulator.backend == "compiled":
                    # Engage the march on every run, not just long ones.
                    simulator._kernel._min_compiled_run = 1
                result = simulator.run(make_channel())
            outputs.append(json.dumps(asdict(result), sort_keys=True))
        assert outputs[0] == outputs[1] == outputs[2] == outputs[3]
