"""Scenario API tests."""
