"""The Scenario API: round trips, fingerprints, and shim equivalence.

The contract under test:

* ``Scenario.from_payload(s.to_payload()) == s`` for arbitrary
  scenarios (Hypothesis), including through a real JSON encode/decode;
* fingerprints are pure functions of the payload — stable across
  processes and worker counts, distinct per coordinate;
* the legacy free functions (``run_attack``, ``run_rank_attack``,
  ``estimate_failure_probability``) are bit-identical shims of the
  ``Session`` facade for **every** registry tracker.
"""

import json
import string
from dataclasses import asdict, replace

import pytest
from hypothesis import given, strategies as st

from repro.attacks import AttackParams, make_attack
from repro.dram.timing import DDR5Timing
from repro.parallel import fork_map
from repro.scenario import (
    AttackSpec,
    Scenario,
    Session,
    TrackerSpec,
    run_scenario,
)
from repro.sim.engine import run_attack, run_rank_attack
from repro.sim.montecarlo import estimate_failure_probability, scaled_timing
from repro.trackers import available_trackers, make_tracker

from ..property.settings import DETERMINISM_SETTINGS, QUICK_SETTINGS

# The scaled regime: whole-trace runs take milliseconds per tracker.
FAST = dict(
    trh=60.0,
    intervals=64,
    max_act=8,
    num_rows=1024,
    refi_per_refw=64,
    scaled_timing=True,
)


def fast_scenario(tracker="mint", attack="double-sided", **overrides):
    kwargs = {**FAST, **overrides}
    return Scenario(tracker=tracker, attack=attack, seed=7, **kwargs)


# ---------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------

_names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)
_param_values = st.one_of(
    st.integers(-1000, 1000),
    st.booleans(),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    _names,
    st.lists(st.integers(0, 100), max_size=4),
)
_params = st.dictionaries(
    _names.map(lambda s: f"p_{s}"), _param_values, max_size=3
)

_tracker_specs = st.builds(
    lambda name, dmq, depth, params: TrackerSpec.of(
        name, dmq=dmq, dmq_depth=depth, **params
    ),
    st.sampled_from(["mint", "para", "graphene", "trr", "none"]),
    st.booleans(),
    st.integers(1, 8),
    _params,
)
_attack_specs = st.builds(
    lambda name, params: AttackSpec.of(name, **params),
    st.sampled_from(["single-sided", "double-sided", "decoy", "rank-stripe"]),
    _params,
)
_timings = st.one_of(
    st.none(),
    st.builds(
        DDR5Timing,
        t_refw_ms=st.floats(1.0, 64.0),
        t_refi_ns=st.floats(1000.0, 8000.0),
        t_rc_ns=st.floats(10.0, 60.0),
    ),
)


@st.composite
def scenarios(draw):
    timing = draw(_timings)
    return Scenario(
        tracker=draw(_tracker_specs),
        attack=draw(_attack_specs),
        trh=draw(st.floats(1.0, 1e9, allow_nan=False)),
        intervals=draw(st.integers(0, 10_000)),
        max_act=draw(st.integers(1, 128)),
        base_row=draw(st.integers(0, 100_000)),
        num_rows=draw(st.integers(64, 1 << 20)),
        blast_radius=draw(st.integers(1, 4)),
        allow_postponement=draw(st.booleans()),
        max_postponed=draw(st.integers(1, 8)),
        refi_per_refw=draw(st.integers(16, 8192)),
        scaled_timing=(timing is None and draw(st.booleans())),
        num_banks=draw(st.integers(1, 8)),
        num_ranks=draw(st.integers(1, 4)),
        concurrent_banks=draw(st.one_of(st.none(), st.integers(1, 8))),
        vectorized=draw(st.sampled_from([None, True, False])),
        timing=timing,
        seed=draw(st.integers(0, 2**63 - 1)),
    )


class TestRoundTrip:
    @given(scenario=scenarios())
    @DETERMINISM_SETTINGS
    def test_payload_round_trip(self, scenario):
        """The headline property: payloads are lossless."""
        assert Scenario.from_payload(scenario.to_payload()) == scenario

    @given(scenario=scenarios())
    @DETERMINISM_SETTINGS
    def test_json_round_trip_preserves_identity(self, scenario):
        """Through a real JSON encode/decode — what `repro run` sees —
        the scenario and its fingerprint both survive."""
        clone = Scenario.from_payload(
            json.loads(json.dumps(scenario.to_payload()))
        )
        assert clone == scenario
        assert clone.fingerprint() == scenario.fingerprint()
        assert clone.task_seed() == scenario.task_seed()

    @given(scenario=scenarios())
    @QUICK_SETTINGS
    def test_version_key_tolerated(self, scenario):
        payload = {"version": 1, **scenario.to_payload()}
        assert Scenario.from_payload(payload) == scenario

    def test_unknown_field_rejected(self):
        payload = fast_scenario().to_payload()
        payload["thr"] = 100  # a typo'd "trh" must not pass silently
        with pytest.raises(ValueError, match="thr"):
            Scenario.from_payload(payload)

    def test_string_specs_coerce(self):
        scenario = Scenario(tracker="mint", attack="double-sided")
        assert scenario.tracker == TrackerSpec.of("mint")
        assert scenario.attack == AttackSpec.of("double-sided")

    def test_payload_accepts_string_spec_shorthand(self):
        """A hand-written scenario.json may use the same string
        shorthand the constructor takes."""
        scenario = Scenario.from_payload(
            {"tracker": "mint", "attack": "double-sided", "trh": 300.0}
        )
        assert scenario == Scenario(tracker="mint", attack="double-sided",
                                    trh=300.0)

    def test_payload_rejects_malformed_specs_clearly(self):
        with pytest.raises(ValueError, match="registry name"):
            Scenario.from_payload({"tracker": 7, "attack": "decoy"})

    def test_validation(self):
        with pytest.raises(ValueError):
            Scenario(tracker="mint", attack="decoy", num_banks=0)
        with pytest.raises(ValueError):
            Scenario(tracker="mint", attack="decoy",
                     scaled_timing=True, timing=DDR5Timing())


class TestFingerprint:
    def test_distinct_per_coordinate(self):
        base = fast_scenario()
        variants = [
            replace(base, trh=61.0),
            replace(base, seed=8),
            replace(base, num_banks=2),
            replace(base, num_ranks=2),
            replace(base, tracker=TrackerSpec.of("para")),
            replace(base, concurrent_banks=2),
        ]
        prints = {scenario.fingerprint() for scenario in variants}
        prints.add(base.fingerprint())
        assert len(prints) == len(variants) + 1

    def test_kernel_choice_is_not_identity(self):
        """`vectorized` is a pure implementation knob: both kernels are
        pinned bit-identical, so it must not re-key streams or caches —
        and the facade must actually deliver identical results."""
        base = fast_scenario(tracker="para")  # RNG-hungry tracker
        scalar = replace(base, vectorized=False)
        assert scalar.fingerprint() == base.fingerprint()
        assert scalar.task_seed() == base.task_seed()
        assert asdict(Session(scalar).run()) == asdict(Session(base).run())

    @pytest.mark.parametrize("n_workers", [1, 4])
    def test_stable_across_worker_counts(self, n_workers):
        """The fingerprint is a pure function of the payload: computing
        it in forked workers yields the same digest as inline."""
        scenario = fast_scenario()
        expected = scenario.fingerprint()
        prints = fork_map(
            lambda _index: scenario.fingerprint(),
            range(8),
            n_workers=n_workers,
        )
        assert set(prints) == {expected}

    def test_run_many_bit_identical_across_worker_counts(self):
        scenario = fast_scenario(trh=30.0)
        serial = Session(scenario).run_many(windows=12, n_workers=1)
        pooled = Session(scenario).run_many(windows=12, n_workers=4)
        assert serial == pooled


class TestShimEquivalence:
    """The legacy free functions are pinned bit-identical to Session."""

    @pytest.mark.parametrize("name", available_trackers())
    def test_run_attack_matches_session(self, name):
        scenario = fast_scenario(tracker=name)
        facade = Session(scenario).run().per_bank[0]
        legacy = run_attack(
            scenario.build_tracker(0),
            scenario.build_trace(),
            trh=scenario.trh,
            timing=scaled_timing(scenario.max_act, scenario.refi_per_refw),
            num_rows=scenario.num_rows,
            refi_per_refw=scenario.refi_per_refw,
        )
        assert asdict(legacy) == asdict(facade)

    @pytest.mark.parametrize("name", available_trackers())
    def test_run_rank_attack_matches_session(self, name):
        scenario = fast_scenario(
            tracker=name,
            attack=AttackSpec.of("rank-stripe", sides=6),
            num_banks=3,
        )
        facade = Session(scenario).run()
        legacy = run_rank_attack(
            scenario.tracker_factory(),
            scenario.build_trace(),
            trh=scenario.trh,
            num_banks=scenario.num_banks,
            timing=scaled_timing(scenario.max_act, scenario.refi_per_refw),
            num_rows=scenario.num_rows,
            refi_per_refw=scenario.refi_per_refw,
        )
        assert asdict(legacy) == asdict(facade)

    @pytest.mark.parametrize("name", available_trackers())
    def test_estimate_failure_probability_matches_run_many(self, name):
        scenario = fast_scenario(tracker=name, attack="single-sided",
                                 trh=30.0)
        facade = Session(scenario).run_many(windows=6)
        legacy = estimate_failure_probability(
            tracker_factory=lambda rng: make_tracker(
                name, rng=rng, max_act=scenario.max_act
            ),
            trace_factory=lambda rng: make_attack(
                "single-sided",
                AttackParams(
                    max_act=scenario.max_act,
                    intervals=scenario.intervals,
                    base_row=scenario.base_row,
                ),
                rng=rng,
            ),
            trh=scenario.trh,
            max_act=scenario.max_act,
            refi_per_refw=scenario.refi_per_refw,
            windows=6,
            num_rows=scenario.num_rows,
            seed=scenario.task_seed(),
        )
        assert legacy == facade


class TestSession:
    def test_repeat_runs_bit_identical(self):
        scenario = fast_scenario(tracker="para")
        first = Session(scenario).run()
        second = Session(scenario).run()
        assert asdict(first) == asdict(second)

    def test_trackers_require_a_run(self):
        session = Session(fast_scenario())
        with pytest.raises(RuntimeError):
            session.trackers
        session.run()
        assert len(session.trackers) == 1

    def test_rank_payload_carries_bank_attributed_flips(self):
        """The aggregate payload (and hence the rank CSV row) must not
        under-report flips that the per-bank payloads carry."""
        scenario = fast_scenario(
            tracker="none",
            attack=AttackSpec.of("rank-stripe", sides=6),
            num_banks=2,
            trh=40.0,
        )
        payload = Session(scenario).run().to_payload()
        assert payload["failed"]
        per_bank_flips = sum(len(b["flips"]) for b in payload["per_bank"])
        assert per_bank_flips > 0
        assert len(payload["flips"]) == per_bank_flips
        assert {flip["bank"] for flip in payload["flips"]} <= {0, 1}

        from repro.sim.results import result_csv_rows

        rank_row = result_csv_rows(payload)[0]
        assert rank_row["scope"] == "rank"
        assert rank_row["flips"] == per_bank_flips

    def test_run_scenario_accepts_payloads(self):
        scenario = fast_scenario()
        from_payload = run_scenario(scenario.to_payload())
        from_object = run_scenario(scenario)
        assert asdict(from_payload) == asdict(from_object)

    def test_session_rejects_non_scenarios(self):
        with pytest.raises(TypeError):
            Session({"tracker": "mint"})

    def test_perf_uses_scenario_timing_and_seed(self):
        from repro.perf.runner import evaluate_scenario

        scenario = fast_scenario()
        figure = Session(scenario).perf(workload="mcf_r",
                                        sim_time_ns=200_000.0)
        again = evaluate_scenario(scenario, workload="mcf_r",
                                  sim_time_ns=200_000.0)
        assert figure == again
        assert figure.workload == "mcf_r"
        assert figure.mint == 1.0

    def test_perf_unknown_workload(self):
        with pytest.raises(KeyError):
            Session(fast_scenario()).perf(workload="not-a-workload")


class TestChannelScenario:
    """num_ranks threading: identity rules, Session lift, exp metrics."""

    def test_pre_channel_payloads_keep_their_identity(self):
        """A payload written before the knob existed (no num_ranks key)
        must fingerprint — and seed — exactly like num_ranks=1, so old
        stores, caches, and random streams survive the lift."""
        scenario = fast_scenario()
        assert scenario.num_ranks == 1
        payload = scenario.to_payload()
        del payload["num_ranks"]
        old = Scenario.from_payload(payload)
        assert old == scenario
        assert old.fingerprint() == scenario.fingerprint()
        assert old.task_seed() == scenario.task_seed()
        assert "num_ranks" not in scenario.identity_payload()
        assert replace(scenario, num_ranks=2).identity_payload()[
            "num_ranks"
        ] == 2

    def test_session_lifts_to_channel_result(self):
        from repro.sim.results import ChannelSimResult

        scenario = fast_scenario(
            attack=AttackSpec.of("rank-synchronized", sides=4),
            num_banks=2,
            num_ranks=2,
        )
        assert scenario.is_channel
        result = Session(scenario).run()
        assert isinstance(result, ChannelSimResult)
        assert result.num_ranks == 2
        assert len(result.per_rank) == 2
        # repeat runs are bit-identical (pure function of the scenario)
        assert asdict(result) == asdict(Session(scenario).run())

    def test_channel_attack_name_lifts_even_at_one_rank(self):
        from repro.sim.results import ChannelSimResult

        scenario = fast_scenario(
            attack=AttackSpec.of("rank-rotation"), num_ranks=1
        )
        assert scenario.is_channel
        assert isinstance(Session(scenario).run(), ChannelSimResult)

    def test_rank_zero_tracker_seeds_are_the_pre_channel_streams(self):
        scenario = fast_scenario(num_ranks=2)
        single = replace(scenario, num_ranks=2)
        for bank in range(3):
            assert single.tracker_seed(bank) == single.tracker_seed(
                bank, rank=0
            )
        assert scenario.tracker_seed(0, rank=1) != scenario.tracker_seed(
            0, rank=0
        )

    def test_session_trackers_flatten_rank_major(self):
        scenario = fast_scenario(
            attack=AttackSpec.of("rank-synchronized", sides=4),
            num_banks=2,
            num_ranks=2,
        )
        session = Session(scenario)
        session.run()
        assert len(session.trackers) == 4

    def test_run_many_channel_bit_identical_across_worker_counts(self):
        scenario = fast_scenario(
            attack=AttackSpec.of("rank-synchronized", sides=4),
            num_banks=2,
            num_ranks=2,
            trh=30.0,
        )
        serial = Session(scenario).run_many(windows=8, n_workers=1)
        pooled = Session(scenario).run_many(windows=8, n_workers=4)
        assert serial == pooled

    def test_channel_payload_and_csv_round(self):
        scenario = fast_scenario(
            tracker="none",
            attack=AttackSpec.of("rank-synchronized", sides=4),
            num_banks=2,
            num_ranks=2,
            trh=40.0,
        )
        payload = Session(scenario).run().to_payload()
        assert payload["num_ranks"] == 2
        per_rank_flips = sum(
            len(r["flips"]) for r in payload["per_rank"]
        )
        assert len(payload["flips"]) == per_rank_flips > 0
        assert {f["rank"] for f in payload["flips"]} <= {0, 1}

        from repro.sim.results import result_csv_rows

        rows = result_csv_rows(payload)
        assert rows[0]["scope"] == "channel"
        assert rows[0]["flips"] == per_rank_flips
        scopes = [row["scope"] for row in rows]
        assert scopes.count("rank") == 2
        assert scopes.count("bank") == 4

    def test_channel_runner_result_matches_session(self):
        from repro.exp.grid import ExperimentPoint
        from repro.exp.runner import run_point

        scenario = fast_scenario(
            attack=AttackSpec.of("rank-synchronized", sides=4),
            num_banks=2,
            num_ranks=2,
        )
        point = ExperimentPoint.from_scenario(scenario)
        executed = run_point(point, base_seed=scenario.seed)
        facade = Session(point.scenario(scenario.seed)).run()
        assert executed.metrics == facade.to_payload()


class TestSweep:
    def test_axes_cross_product(self):
        grid = fast_scenario().sweep(
            tracker=["mint", "para"],
            attack=["single-sided", "double-sided"],
            num_banks=[1, 2],
        )
        assert len(grid) == 8
        banks = {p.config.num_banks for p in grid.points()}
        assert banks == {1, 2}

    def test_base_scenario_supplies_unswept_knobs(self):
        grid = fast_scenario(trh=123.0).sweep(tracker=["mint", "trr"])
        assert all(p.config.trh == 123.0 for p in grid.points())
        assert all(p.config.scaled_timing for p in grid.points())

    def test_scalar_axis_means_one_value(self):
        grid = fast_scenario().sweep(tracker="graphene", num_banks=2)
        points = grid.points()
        assert len(points) == 1
        assert points[0].tracker.name == "graphene"
        assert points[0].config.num_banks == 2

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="not_a_knob"):
            fast_scenario().sweep(not_a_knob=[1, 2])

    def test_vectorized_axis_rejected(self):
        """Both kernel choices fingerprint as one point (deliberately),
        so sweeping the knob would silently collide in the store."""
        with pytest.raises(ValueError, match="vectorized"):
            fast_scenario().sweep(vectorized=[False, True])

    def test_custom_timing_not_grid_able(self):
        scenario = Scenario(tracker="mint", attack="decoy",
                            timing=DDR5Timing())
        with pytest.raises(ValueError, match="timing"):
            scenario.sweep(tracker=["mint", "para"])

    def test_sweep_points_execute_through_runner(self):
        from repro.exp import run_grid

        grid = fast_scenario().sweep(tracker=["mint", "none"])
        report = run_grid(grid, base_seed=3, n_workers=1)
        by_tracker = {r.tracker: r for r in report.results}
        assert not by_tracker["mint"].failed
        assert by_tracker["none"].failed


class TestExpIntegration:
    def test_point_scenario_round_trip(self):
        from repro.exp.grid import ExperimentPoint

        scenario = fast_scenario(num_banks=2)
        point = ExperimentPoint.from_scenario(scenario)
        rebuilt = point.scenario(base_seed=scenario.seed)
        assert rebuilt == scenario

    def test_runner_result_matches_session(self):
        """A grid point's metrics are exactly the facade's result."""
        from repro.exp.grid import ExperimentPoint
        from repro.exp.runner import run_point

        scenario = fast_scenario(tracker="para", trh=30.0)
        point = ExperimentPoint.from_scenario(scenario)
        executed = run_point(point, base_seed=scenario.seed)
        facade = Session(point.scenario(scenario.seed)).run()
        assert executed.metrics == facade.per_bank[0].to_payload()

    def test_rank_runner_result_matches_session(self):
        from repro.exp.grid import ExperimentPoint
        from repro.exp.runner import run_point

        scenario = fast_scenario(
            tracker="mint",
            attack=AttackSpec.of("rank-stripe", sides=6),
            num_banks=3,
        )
        point = ExperimentPoint.from_scenario(scenario)
        executed = run_point(point, base_seed=scenario.seed)
        facade = Session(point.scenario(scenario.seed)).run()
        assert executed.metrics == facade.to_payload()
