"""Channel-level engine tests: the equivalence and back-compat pins.

The two load-bearing guarantees of the channel refactor, mirroring the
rank refactor's pins one level up:

* **Channel equivalence** — one :class:`ChannelSimulator` run over a
  per-rank schedule set is bit-identical, rank for rank, to N
  independent :class:`RankSimulator` runs under the per-rank seed
  derivation (ranks share only the channel *clock*, never refresh
  schedules, disturbance, or tracker state).
* **Single-rank backward compatibility** — a 1-rank channel run of any
  existing trace is the rank-0 wrapping of today's
  :class:`RankSimulator` result, so pre-channel callers see
  bit-identical :class:`RankSimResult`s.
"""

import json
from dataclasses import asdict

import pytest

from repro.attacks import AttackParams, make_channel_attack
from repro.attacks.channel import (
    channel_stripe_decoy,
    rank_rotation,
    rank_synchronized,
)
from repro.attacks.rank import rank_stripe
from repro.sim.engine import (
    ChannelSimulator,
    EngineConfig,
    RankSimulator,
    run_channel_attack,
)
from repro.sim.trace import ChannelTrace, RankInterval, RankTrace
from repro.trackers.registry import (
    available_trackers,
    bank_tracker_factory,
    channel_tracker_factory,
)

CONFIG_KWARGS = dict(trh=200.0, num_rows=4096, refi_per_refw=64)


def _canonical(result) -> str:
    return json.dumps(asdict(result), sort_keys=True)


def _channel_trace(num_ranks):
    """Distinct per-rank schedules (different rows, lengths, shapes)."""
    per_rank = {}
    for rank in range(num_ranks):
        intervals = [
            RankInterval.of([(0, 16 + 8 * rank + (i % 3)), (1, 400 + rank)])
            for i in range(120 + 30 * rank)
        ]
        per_rank[rank] = RankTrace(f"rank{rank}-sched", intervals)
    return ChannelTrace(name="mixed", per_rank=per_rank)


class TestChannelEquivalence:
    @pytest.mark.parametrize("tracker", available_trackers())
    def test_channel_run_equals_independent_rank_runs(self, tracker):
        """The headline pin: N independent rank runs == one channel
        run, bit for bit, for every registry tracker — using exactly
        the per-rank seed derivation the channel factory applies."""
        num_ranks = 3
        trace = _channel_trace(num_ranks)
        factory = channel_tracker_factory(tracker, base_seed=13, max_act=8)
        config = EngineConfig(num_banks=2, **CONFIG_KWARGS)

        channel = ChannelSimulator(factory, config, num_ranks=num_ranks)
        result = channel.run(trace)

        assert result.num_ranks == num_ranks
        for rank in range(num_ranks):
            independent = RankSimulator(
                bank_tracker_factory(
                    tracker, base_seed=factory.rank_seed(rank), max_act=8
                ),
                config,
            ).run(trace.per_rank[rank])
            assert _canonical(result.per_rank[rank]) == _canonical(
                independent
            ), f"rank {rank} diverged for tracker {tracker!r}"

    def test_single_rank_channel_is_rank_run(self):
        """A 1-rank ChannelSimulator run of an existing rank trace is
        bit-identical to today's RankSimulator."""
        params = AttackParams(max_act=8, intervals=200, base_row=64)
        trace = rank_stripe(6, 2, params)
        config = EngineConfig(num_banks=2, **CONFIG_KWARGS)
        factory = channel_tracker_factory("mint", base_seed=7, max_act=8)

        rank_result = RankSimulator(
            bank_tracker_factory(
                "mint", base_seed=factory.rank_seed(0), max_act=8
            ),
            config,
        ).run(trace)
        channel_result = ChannelSimulator(factory, config, num_ranks=1).run(
            trace
        )

        assert channel_result.num_ranks == 1
        assert _canonical(channel_result.per_rank[0]) == _canonical(
            rank_result
        )
        assert channel_result.demand_acts == rank_result.demand_acts
        assert channel_result.mitigations == rank_result.mitigations
        assert channel_result.failed == rank_result.failed

    def test_streamed_channel_attack_equals_materialized(self):
        """Channel attacks emit streams; materializing them first must
        not change a single bit."""
        params = AttackParams(max_act=8, intervals=160, base_row=64)
        trace = channel_stripe_decoy(500, 3, params, num_banks=2)
        materialized = ChannelTrace(
            name=trace.name,
            per_rank={
                rank: trace.rank_stream(rank).materialize()
                for rank in trace.per_rank
            },
        )
        config = EngineConfig(
            num_banks=2, allow_postponement=True, **CONFIG_KWARGS
        )

        def run(t):
            return ChannelSimulator(
                channel_tracker_factory("mint", base_seed=5, max_act=8),
                config,
                num_ranks=3,
            ).run(t)

        assert _canonical(run(trace)) == _canonical(run(materialized))


class TestChannelSimulatorContract:
    def test_rejects_trace_addressing_missing_rank(self):
        trace = _channel_trace(3)
        sim = ChannelSimulator(
            channel_tracker_factory("mint", base_seed=1, max_act=8),
            EngineConfig(num_banks=2, **CONFIG_KWARGS),
            num_ranks=2,
        )
        with pytest.raises(ValueError, match="addresses rank 2"):
            sim.run(trace)

    def test_materialized_traces_validate_before_any_execution(self):
        """An over-budget interval deep in a materialized channel trace
        must raise before any rank absorbs a single interval — the same
        validate-before-execute contract the rank engine gives."""
        deep_bad = RankTrace(
            "late-bad",
            [RankInterval.of([(0, 9)])] * 5000
            + [RankInterval.of([(0, r) for r in range(200)])],
        )
        sim = ChannelSimulator(
            channel_tracker_factory("mint", base_seed=1, max_act=8),
            EngineConfig(num_banks=2, **CONFIG_KWARGS),
            num_ranks=2,
        )
        with pytest.raises(ValueError, match="interval 5000"):
            sim.run(ChannelTrace(name="bad", per_rank={0: deep_bad}))
        assert all(rank.intervals == 0 for rank in sim.ranks)
        assert all(
            rank.bank_demand_acts == [0, 0] for rank in sim.ranks
        )

    def test_rejects_reuse_across_runs(self):
        """Tracker, oracle, and counter state accumulate across runs;
        a second ``run`` must raise instead of silently mixing windows."""
        trace = _channel_trace(2)
        sim = ChannelSimulator(
            channel_tracker_factory("mint", base_seed=1, max_act=8),
            EngineConfig(num_banks=2, **CONFIG_KWARGS),
            num_ranks=2,
        )
        first = sim.run(trace)
        assert first.intervals > 0
        with pytest.raises(RuntimeError, match="already run"):
            sim.run(trace)
        # The rejected run left every rank untouched.
        assert all(r.intervals > 0 for r in sim.ranks)

    def test_materialized_schedules_validate_exactly_once(self, monkeypatch):
        """The upfront whole-trace validation must not be repeated
        chunk-by-chunk during the march (the old double-validation)."""
        import repro.sim.engine as engine_mod
        import repro.sim.trace as trace_mod

        calls = {"upfront": 0, "chunk": 0}
        real = trace_mod.validate_rank_intervals

        def counting_upfront(*args, **kwargs):
            calls["upfront"] += 1
            return real(*args, **kwargs)

        def counting_chunk(*args, **kwargs):
            calls["chunk"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(
            trace_mod, "validate_rank_intervals", counting_upfront
        )
        monkeypatch.setattr(
            engine_mod, "validate_rank_intervals", counting_chunk
        )
        num_ranks = 2
        sim = ChannelSimulator(
            channel_tracker_factory("mint", base_seed=1, max_act=8),
            EngineConfig(num_banks=2, **CONFIG_KWARGS),
            num_ranks=num_ranks,
        )
        sim.run(_channel_trace(num_ranks))
        # One whole-trace pass per addressed rank, zero re-validation
        # during execution.
        assert calls["upfront"] == num_ranks
        assert calls["chunk"] == 0

    def test_cycle_streams_validate_pattern_not_horizon(self, monkeypatch):
        """A CycleStream produces only its pattern's interval objects,
        so validation runs once per rank over the pattern — not over
        every interval of a (possibly huge) horizon."""
        import repro.sim.engine as engine_mod

        calls = []
        real = engine_mod.validate_rank_intervals

        def counting(intervals, *args, **kwargs):
            calls.append(len(intervals))
            return real(intervals, *args, **kwargs)

        monkeypatch.setattr(
            engine_mod, "validate_rank_intervals", counting
        )
        from repro.sim.trace import CycleStream

        num_ranks = 2
        interval = RankInterval.of([(0, 9), (1, 11)])
        trace = ChannelTrace(
            name="cycled",
            per_rank={
                rank: CycleStream(f"r{rank}", (interval,), 5000)
                for rank in range(num_ranks)
            },
        )
        sim = ChannelSimulator(
            channel_tracker_factory("mint", base_seed=1, max_act=8),
            EngineConfig(num_banks=2, **CONFIG_KWARGS),
            num_ranks=num_ranks,
        )
        sim.run(trace)
        # One pattern-sized pass per rank; never the 5000-interval
        # horizon.
        assert calls == [1] * num_ranks

    def test_cycle_stream_over_budget_rejected_upfront(self):
        """The pattern-once validation preserves fail-fast with the
        chunk-wise error message."""
        from repro.sim.trace import CycleStream

        bad = RankInterval.of([(9, 1)])  # bank out of range
        sim = ChannelSimulator(
            channel_tracker_factory("mint", base_seed=1, max_act=8),
            EngineConfig(num_banks=2, **CONFIG_KWARGS),
            num_ranks=1,
        )
        trace = ChannelTrace(
            name="bad-bank",
            per_rank={0: CycleStream("bad-bank", (bad,), 1000)},
        )
        with pytest.raises(ValueError, match="interval 0 addresses bank 9"):
            sim.run(trace)
        assert all(rank.intervals == 0 for rank in sim.ranks)

    def test_over_budget_trace_rejected_before_any_interval(self):
        """Fail-fast is preserved with single validation: an over-budget
        interval anywhere in a materialized schedule raises before any
        rank executes anything."""
        bad = RankTrace(
            "bad",
            [RankInterval.of([(0, 9)])] * 10
            + [RankInterval.of([(0, r) for r in range(500)])],
        )
        sim = ChannelSimulator(
            channel_tracker_factory("mint", base_seed=1, max_act=8),
            EngineConfig(num_banks=2, **CONFIG_KWARGS),
            num_ranks=1,
        )
        with pytest.raises(ValueError, match="interval 10"):
            sim.run(ChannelTrace(name="bad", per_rank={0: bad}))
        assert all(rank.intervals == 0 for rank in sim.ranks)
        assert all(rank.bank_demand_acts == [0, 0] for rank in sim.ranks)

    def test_rank_simulator_rejects_multi_rank_config(self):
        with pytest.raises(ValueError, match="ChannelSimulator"):
            RankSimulator(
                bank_tracker_factory("mint", base_seed=1),
                EngineConfig(num_ranks=2),
            )

    def test_idle_ranks_report_empty_results(self):
        sim = ChannelSimulator(
            channel_tracker_factory("mint", base_seed=1, max_act=8),
            EngineConfig(num_banks=2, **CONFIG_KWARGS),
            num_ranks=2,
        )
        trace = RankTrace("solo", [RankInterval.of([(0, 9)])] * 16)
        result = sim.run(trace)  # rank-scoped input lands on rank 0
        assert result.per_rank[0].demand_acts == 16
        assert result.per_rank[1].demand_acts == 0
        assert result.per_rank[1].intervals == 0
        assert result.intervals == 16

    def test_run_channel_attack_shim(self):
        params = AttackParams(max_act=8, intervals=100, base_row=64)
        trace = rank_synchronized(4, 2, params, num_banks=2)
        result = run_channel_attack(
            channel_tracker_factory("mint", base_seed=3, max_act=8),
            trace,
            trh=200.0,
            num_ranks=2,
            num_banks=2,
            num_rows=4096,
            refi_per_refw=64,
        )
        assert result.num_ranks == 2
        assert result.demand_acts == sum(
            r.demand_acts for r in result.per_rank
        )

    def test_rotation_covers_every_interval_exactly_once(self):
        from repro.attacks.classic import double_sided

        base = double_sided(AttackParams(max_act=8, intervals=90,
                                         base_row=64))
        trace = rank_rotation(base, 3)
        total = sum(
            trace.rank_stream(rank).materialize().total_acts
            for rank in range(3)
        )
        assert total == base.total_acts

    def test_make_channel_attack_replicates_unknown_scoped_names(self):
        params = AttackParams(max_act=8, intervals=60, base_row=64)
        trace = make_channel_attack(
            "double-sided", params, num_ranks=2, num_banks=1
        )
        streams = [trace.rank_stream(rank).materialize() for rank in (0, 1)]
        assert streams[0].total_acts == streams[1].total_acts > 0
