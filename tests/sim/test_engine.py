"""Tests for the bank-level security simulation engine."""

import random

import pytest

from repro.core.dmq import DelayedMitigationQueue
from repro.core.mint import MintTracker
from repro.sim.engine import BankSimulator, EngineConfig, run_attack, with_dmq
from repro.sim.trace import Interval, Trace, repeat_interval
from repro.trackers.base import NullTracker
from repro.trackers.prct import PrctTracker
from repro.trackers.protrr import ProTrrTracker


def simple_trace(row=100, intervals=50, acts=73, postpone=False):
    return Trace(
        "test", repeat_interval([row] * acts, intervals, postpone=postpone)
    )


class TestBasicOperation:
    def test_unprotected_bank_flips(self):
        result = run_attack(NullTracker(), simple_trace(intervals=10), trh=100)
        assert result.failed
        assert result.flips[0].row in (99, 101)

    def test_mint_prevents_classic_attack(self):
        tracker = MintTracker(rng=random.Random(1))
        result = run_attack(tracker, simple_trace(intervals=200), trh=1000)
        assert not result.failed

    def test_counts_demand_acts(self):
        result = run_attack(NullTracker(), simple_trace(intervals=5), trh=1e9)
        assert result.demand_acts == 5 * 73

    def test_refresh_per_interval(self):
        result = run_attack(NullTracker(), simple_trace(intervals=7), trh=1e9)
        assert result.refreshes == 7

    def test_budget_validation(self):
        trace = Trace("bad", [Interval.of([1] * 80)])
        with pytest.raises(ValueError):
            run_attack(NullTracker(), trace, trh=1e9)

    def test_summary_format(self):
        result = run_attack(NullTracker(), simple_trace(intervals=2), trh=1e9)
        assert "ok" in result.summary()
        assert "146" in result.summary() or "disturbance" in result.summary()


class TestMitigationPlumbing:
    def test_mitigations_counted(self):
        tracker = MintTracker(rng=random.Random(1))
        result = run_attack(tracker, simple_trace(intervals=100), trh=1e9)
        # Single-sided full-window: selection nearly every interval.
        assert result.mitigations > 80

    def test_transitive_mitigations_counted(self):
        tracker = MintTracker(transitive=True, rng=random.Random(1))
        result = run_attack(tracker, simple_trace(intervals=2000), trh=1e9)
        assert result.transitive_mitigations > 0
        assert result.transitive_mitigations < result.mitigations / 10

    def test_counter_tracker_sees_victim_refreshes(self):
        """PRCT counters grow from mitigative activations too."""
        tracker = PrctTracker(num_rows=1024)
        simulator = BankSimulator(tracker, EngineConfig(trh=1e9, num_rows=1024))
        simulator.run(simple_trace(row=100, intervals=3))
        # Victim refreshes of rows 99/101 credited them as activations.
        assert tracker.count(99) > 0 or tracker.count(101) > 0

    def test_protrr_victim_refresh_path(self):
        tracker = ProTrrTracker(num_entries=16, num_rows=1024)
        simulator = BankSimulator(tracker, EngineConfig(trh=1e9, num_rows=1024))
        result = simulator.run(simple_trace(row=100, intervals=20))
        assert result.mitigations > 0

    def test_unmitigated_peak_tracked(self):
        result = run_attack(NullTracker(), simple_trace(intervals=4), trh=1e9)
        assert result.max_unmitigated[100] == 4 * 73


class TestPostponement:
    def test_disabled_by_default(self):
        trace = simple_trace(intervals=10, postpone=True)
        result = run_attack(NullTracker(), trace, trh=1e9)
        # Engine refuses to postpone: one refresh per interval.
        assert result.refreshes == 10

    def test_enabled_batches_refreshes(self):
        trace = simple_trace(intervals=10, postpone=True)
        result = run_attack(
            NullTracker(), trace, trh=1e9, allow_postponement=True
        )
        # Ceiling of 4: refreshes arrive in batches of 5.
        assert result.refreshes == 10

    def test_dmq_pseudo_mitigations_recorded(self):
        tracker = with_dmq(MintTracker(rng=random.Random(1)))
        trace = simple_trace(intervals=10, postpone=True)
        result = run_attack(tracker, trace, trh=1e9, allow_postponement=True)
        assert result.pseudo_mitigations > 0


class TestAutoRefresh:
    def test_slow_attack_never_flips(self):
        """A row hammered once per window cannot beat auto-refresh."""
        trace = Trace(
            "slow", repeat_interval([100], 128)
        )
        result = run_attack(
            NullTracker(), trace, trh=100, num_rows=1024, refi_per_refw=64
        )
        assert not result.failed

    def test_engine_uses_row_count(self):
        config = EngineConfig(trh=10, num_rows=256, refi_per_refw=64)
        simulator = BankSimulator(NullTracker(), config)
        assert simulator.device.config.rows_per_bank == 256
