"""Monte-Carlo cross-validation of the analytic model (scaled regime)."""

import random

import pytest

from repro.analysis.saroiu_wolman import failure_probability
from repro.core.mint import MintTracker
from repro.sim.montecarlo import estimate_failure_probability, scaled_timing
from repro.sim.trace import Interval, Trace
from repro.trackers.base import NullTracker


MAX_ACT = 8
REFI_PER_REFW = 64


def one_per_interval_trace(rng, rows=MAX_ACT, intervals=REFI_PER_REFW):
    """Scaled pattern-2: `rows` rows, one activation each per interval.

    Rows sit in the auto-refresh slice served at the *last* REF of the
    window (rows 940+ of 1024 with 64 slices), so the rolling refresh
    cannot interrupt a failure run mid-window and the analytic model
    applies without the geometric correction.
    """
    bases = [940 + 10 * i for i in range(rows)]
    out = []
    cursor = 0
    for _ in range(intervals):
        acts = []
        for _ in range(min(MAX_ACT, rows)):
            acts.append(bases[cursor % rows])
            cursor += 1
        out.append(Interval.of(acts))
    return Trace("scaled-pattern2", out)


class TestScaledTiming:
    def test_max_act(self):
        assert scaled_timing(MAX_ACT, REFI_PER_REFW).max_act == MAX_ACT

    def test_refw(self):
        timing = scaled_timing(MAX_ACT, REFI_PER_REFW)
        assert timing.refi_per_refw == REFI_PER_REFW


class TestCrossValidation:
    @pytest.mark.slow
    def test_mint_failure_rate_matches_analytic_model(self):
        """The headline validation: empirical failure probability of the
        real MINT implementation matches the Saroiu-Wolman prediction in
        a scaled-down regime (M=8, 64 tREFI per window, TRH=40).

        Analytic: rows * SW(n=64, p=1/8, T=40), union-bounded over the
        8 attacked rows; auto-refresh interference is avoided by row
        placement (see the trace factory docstring).
        """
        trh = 40
        rows = MAX_ACT
        result = estimate_failure_probability(
            tracker_factory=lambda rng: MintTracker(
                max_act=MAX_ACT, transitive=False, rng=rng
            ),
            trace_factory=lambda rng: one_per_interval_trace(rng, rows=rows),
            trh=trh,
            max_act=MAX_ACT,
            refi_per_refw=REFI_PER_REFW,
            windows=4000,
            num_rows=1024,
            seed=42,
        )
        per_row = failure_probability(REFI_PER_REFW, 1.0 / MAX_ACT, trh)
        predicted = rows * per_row  # union bound over aggressor rows
        lo, hi = result.confidence_interval(z=3.0)
        assert lo <= predicted <= hi, (
            f"predicted {predicted:.4f} outside CI ({lo:.4f}, {hi:.4f}); "
            f"measured {result.failure_probability:.4f}"
        )

    def test_unprotected_always_fails(self):
        result = estimate_failure_probability(
            tracker_factory=lambda rng: NullTracker(),
            trace_factory=lambda rng: Trace(
                "hammer", [Interval.of([100] * MAX_ACT)] * 32
            ),
            trh=50,
            max_act=MAX_ACT,
            refi_per_refw=REFI_PER_REFW,
            windows=20,
            seed=1,
        )
        assert result.failure_probability == 1.0

    def test_guaranteed_protection_bounds_direct_victims(self):
        """Classic single-sided vs MINT: the direct victims never see
        more than ~2M unmitigated hammers (Section V-C). The transitive
        channel is asserted separately (it needs the transitive slot)."""
        from repro.sim.engine import BankSimulator, EngineConfig
        from repro.sim.montecarlo import scaled_timing

        timing = scaled_timing(MAX_ACT, REFI_PER_REFW)
        for seed in range(10):
            simulator = BankSimulator(
                MintTracker(max_act=MAX_ACT, transitive=False,
                            rng=random.Random(seed)),
                EngineConfig(
                    timing=timing, trh=1e9, num_rows=1024,
                    refi_per_refw=REFI_PER_REFW,
                ),
            )
            simulator.run(
                Trace("classic", [Interval.of([500] * MAX_ACT)] * REFI_PER_REFW)
            )
            model = simulator.device.banks[0]
            for victim in (499, 501):
                # Selection is guaranteed each interval; the victim can
                # carry at most one interval of hammers plus the current
                # interval before its refresh lands.
                assert model.peak_disturbance(victim) <= 2 * MAX_ACT

    def test_confidence_interval_sane(self):
        from repro.sim.montecarlo import MonteCarloResult

        result = MonteCarloResult(windows=1000, failures=100, total_mitigations=0)
        lo, hi = result.confidence_interval()
        assert lo < 0.1 < hi
        assert 0.0 <= lo and hi <= 1.0


class TestWilsonInterval:
    """The CI must stay informative at the boundaries — the Wald form
    previously returned the degenerate ``(0.0, 0.0)`` at zero observed
    failures, a claim of certainty exactly in the rare-event regime
    this module exists to probe."""

    def _result(self, windows, failures):
        from repro.sim.montecarlo import MonteCarloResult

        return MonteCarloResult(
            windows=windows, failures=failures, total_mitigations=0
        )

    def test_zero_failures_upper_bound_is_positive(self):
        result = self._result(windows=1000, failures=0)
        lo, hi = result.confidence_interval()
        assert lo == 0.0
        assert hi > 0.0
        # Wilson at p=0: upper bound is z^2 / (n + z^2).
        z = 1.96
        assert hi == pytest.approx(z * z / (1000 + z * z))

    def test_all_failures_lower_bound_below_one(self):
        result = self._result(windows=1000, failures=1000)
        lo, hi = result.confidence_interval()
        assert hi == 1.0
        assert lo < 1.0
        z = 1.96
        assert lo == pytest.approx(1000 / (1000 + z * z))

    def test_zero_windows_is_vacuous(self):
        assert self._result(0, 0).confidence_interval() == (0.0, 1.0)

    def test_interval_brackets_point_estimate(self):
        result = self._result(windows=500, failures=37)
        lo, hi = result.confidence_interval()
        assert 0.0 <= lo < result.failure_probability < hi <= 1.0

    def test_wider_z_widens_interval(self):
        result = self._result(windows=500, failures=37)
        lo95, hi95 = result.confidence_interval(z=1.96)
        lo99, hi99 = result.confidence_interval(z=3.0)
        assert lo99 < lo95 and hi95 < hi99

    def test_payload_carries_wilson_bounds(self):
        result = self._result(windows=1000, failures=0)
        payload = result.to_payload()
        lo, hi = result.confidence_interval()
        assert payload["ci95_low"] == lo
        assert payload["ci95_high"] == hi
        assert payload["ci95_high"] > 0.0


class TestParallelFanOut:
    def _estimate(self, n_workers):
        return estimate_failure_probability(
            tracker_factory=lambda rng: MintTracker(
                max_act=MAX_ACT, transitive=False, rng=rng
            ),
            trace_factory=lambda rng: one_per_interval_trace(rng),
            trh=30,
            max_act=MAX_ACT,
            refi_per_refw=REFI_PER_REFW,
            windows=80,
            num_rows=1024,
            seed=42,
            n_workers=n_workers,
        )

    def test_worker_count_does_not_change_counts(self):
        """Per-window seeds are a stable hash of (seed, index), so the
        fan-out is bit-identical to the serial run."""
        serial = self._estimate(n_workers=1)
        pooled = self._estimate(n_workers=4)
        assert serial == pooled

    def test_windows_are_not_all_identical(self):
        """Distinct windows get distinct random streams: MINT's random
        selections must differ across windows (equal mitigation totals
        per window would mean a constant stream)."""
        single = self._estimate(n_workers=1)
        assert 0 < single.windows == 80
        # With TRH=30 in this regime some windows fail and some survive,
        # which can only happen if the per-window RNG varies.
        assert 0 < single.failures < single.windows
