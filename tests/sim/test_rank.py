"""Tests for the rank-level simulator and system MTTF helpers."""

import random

import pytest

from repro.attacks import AttackParams, double_sided
from repro.core.mint import MintTracker
from repro.sim.engine import RankSimulator
from repro.sim.results import system_mttf_years
from repro.trackers.base import NullTracker


def mint_factory(bank):
    return MintTracker(rng=random.Random(1000 + bank))


class TestDeprecatedImportPath:
    def test_legacy_module_warns_but_still_resolves(self):
        import repro.sim.rank as legacy

        with pytest.warns(DeprecationWarning, match="RankSimulator"):
            assert legacy.RankSimulator is RankSimulator
        # The MTTF helper is a deliberate permanent re-export: no warning.
        assert legacy.system_mttf_years is system_mttf_years


class TestRankSimulator:
    def test_per_bank_independence(self):
        params = AttackParams(max_act=73, intervals=50)
        simulator = RankSimulator(
            lambda bank: NullTracker() if bank == 0 else mint_factory(bank),
            num_banks=2,
            trh=300,
        )
        traces = [
            double_sided(params, victim=1000),
            double_sided(params, victim=1000),
        ]
        result = simulator.run(traces)
        assert result.failed_banks == [0]
        assert result.any_flip

    def test_all_protected(self):
        params = AttackParams(max_act=73, intervals=100)
        simulator = RankSimulator(mint_factory, num_banks=4, trh=1000)
        traces = [double_sided(params, victim=1000)] * 4
        result = simulator.run(traces)
        assert not result.any_flip
        assert result.total_mitigations > 300

    def test_tfaw_limit_enforced(self):
        simulator = RankSimulator(
            mint_factory, num_banks=32, concurrent_banks=4, trh=1000
        )
        params = AttackParams(max_act=73, intervals=5)
        traces = [double_sided(params, victim=1000)] * 5
        with pytest.raises(ValueError):
            simulator.run(traces)

    def test_tracker_instances_not_shared(self):
        simulator = RankSimulator(mint_factory, num_banks=3, trh=1000)
        trackers = [s.tracker for s in simulator.simulators]
        assert len(set(map(id, trackers))) == 3

    def test_rejects_zero_banks(self):
        with pytest.raises(ValueError):
            RankSimulator(mint_factory, num_banks=0)


class TestSystemMttf:
    def test_paper_example(self):
        """Table VII: 10,000-year banks with 22 concurrent -> ~450-year
        system."""
        assert system_mttf_years(10_000.0, banks=22) == pytest.approx(454.5, rel=0.01)

    def test_scaling(self):
        assert system_mttf_years(1000.0, banks=10) == 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            system_mttf_years(0.0)
        with pytest.raises(ValueError):
            system_mttf_years(100.0, banks=0)
