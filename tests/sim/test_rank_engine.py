"""Rank-level engine tests: the equivalence and back-compat pins.

The two load-bearing guarantees of the rank refactor:

* **Rank equivalence** — one ``RankSimulator`` run over a
  bank-partitioned trace is bit-identical, bank for bank, to N
  independent ``BankSimulator`` runs (banks share only the refresh
  *schedule*, never disturbance or tracker state).
* **Single-bank backward compatibility** — ``BankSimulator`` /
  ``run_attack`` results are the bank-0 projection of a 1-bank rank
  run, so pre-rank callers see bit-identical ``SimResult``s.
"""

import random

import pytest
from hypothesis import given, strategies as st

from repro.attacks import AttackParams, cross_bank_decoy, double_sided
from repro.sim.engine import (
    BankSimulator,
    EngineConfig,
    RankSimulator,
    run_attack,
    run_rank_attack,
)
from repro.sim.trace import (
    Interval,
    RankInterval,
    RankTrace,
    Trace,
    lift_trace,
    repeat_interval,
)
from repro.trackers.base import NullTracker
from repro.trackers.registry import bank_tracker_factory, make_tracker
from tests.property.settings import SLOW_SETTINGS

CONFIG_KWARGS = dict(trh=150.0, num_rows=2048, refi_per_refw=64)


def mint_factory(base_seed=7, **kwargs):
    return bank_tracker_factory("mint", base_seed=base_seed, **kwargs)


def partitioned_traces(bank_rows, intervals):
    """One full-budget row trace per bank from a row-seed list."""
    traces = []
    for rows in bank_rows:
        acts = [rows[i % len(rows)] for i in range(8)]
        traces.append(Trace("equiv", repeat_interval(acts, intervals)))
    return traces


@st.composite
def bank_partitions(draw):
    num_banks = draw(st.integers(min_value=1, max_value=3))
    intervals = draw(st.integers(min_value=1, max_value=24))
    bank_rows = [
        draw(
            st.lists(
                st.integers(min_value=2, max_value=2000),
                min_size=1,
                max_size=4,
            )
        )
        for _ in range(num_banks)
    ]
    return num_banks, intervals, bank_rows


class TestRankEquivalence:
    @given(bank_partitions())
    @SLOW_SETTINGS
    def test_rank_run_equals_independent_bank_runs(self, partition):
        """N independent BankSimulators == one RankSimulator, bitwise."""
        num_banks, intervals, bank_rows = partition
        traces = partitioned_traces(bank_rows, intervals)
        factory = mint_factory(base_seed=13, max_act=8)

        expected = []
        for bank, trace in enumerate(traces):
            sim = BankSimulator(
                factory(bank), EngineConfig(**CONFIG_KWARGS)
            )
            expected.append(sim.run(trace))

        rank = RankSimulator(
            mint_factory(base_seed=13, max_act=8),
            EngineConfig(num_banks=num_banks, **CONFIG_KWARGS),
        )
        result = rank.run(RankTrace.from_bank_traces("equiv", traces))

        assert result.num_banks == num_banks
        for bank in range(num_banks):
            assert result.per_bank[bank] == expected[bank]

    def test_single_bank_shim_is_bank_zero_projection(self):
        params = AttackParams(intervals=200)
        trace = double_sided(params, victim=1000)
        bank_result = BankSimulator(
            make_tracker("mint", seed=99), EngineConfig(**CONFIG_KWARGS)
        ).run(trace)
        rank_result = RankSimulator(
            lambda bank: make_tracker("mint", seed=99),
            EngineConfig(num_banks=1, **CONFIG_KWARGS),
        ).run(trace)
        assert rank_result.per_bank[0] == bank_result

    def test_lifted_trace_matches_row_only_trace(self):
        trace = Trace("t", repeat_interval([100] * 8, 40, postpone=True))
        config = EngineConfig(allow_postponement=True, **CONFIG_KWARGS)
        plain = BankSimulator(make_tracker("mint", seed=3), config).run(trace)
        lifted = RankSimulator(
            lambda bank: make_tracker("mint", seed=3), config
        ).run(lift_trace(trace))
        assert lifted.per_bank[0] == plain

    def test_run_attack_unchanged_for_row_traces(self):
        trace = Trace("t", repeat_interval([100] * 73, 10))
        result = run_attack(NullTracker(), trace, trh=100)
        assert result.failed
        assert result.flips[0].row in (99, 101)
        assert result.demand_acts == 730


class TestRankSimulator:
    def test_rejects_reuse_across_runs(self):
        """A simulator accumulates tracker/oracle/counter state, so a
        second ``run`` would silently mix windows; it must raise."""
        trace = RankTrace("w", [RankInterval.of([(0, 5)])] * 4)
        sim = RankSimulator(
            lambda bank: NullTracker(),
            EngineConfig(num_banks=1, **CONFIG_KWARGS),
        )
        first = sim.run(trace)
        assert first.intervals == 4
        with pytest.raises(RuntimeError, match="already consumed"):
            sim.run(trace)
        # The rejected run must not have touched any state.
        assert sim.intervals == 4

    def test_run_rejected_after_incremental_feeding(self):
        """``feed`` is the incremental entry point (many calls build one
        window), but a later ``run`` on the same simulator would graft a
        whole second schedule onto that window — reject it too."""
        sim = RankSimulator(
            lambda bank: NullTracker(),
            EngineConfig(num_banks=1, **CONFIG_KWARGS),
        )
        sim.feed([RankInterval.of([(0, 5)])])
        with pytest.raises(RuntimeError, match="already consumed"):
            sim.run(RankTrace("w", [RankInterval.of([(0, 5)])] * 2))

    def test_banks_are_isolated(self):
        """Hammering bank 0 must not disturb bank 1's rows."""
        trace = RankTrace(
            "iso", [RankInterval.of([(0, 100)] * 8)] * 30
        )
        result = RankSimulator(
            lambda bank: NullTracker(),
            EngineConfig(num_banks=2, trh=60.0, num_rows=1024),
        ).run(trace)
        assert result.failed_banks == [0]
        assert result.per_bank[1].demand_acts == 0
        assert result.per_bank[1].max_disturbance == 0

    def test_shared_refresh_schedule(self):
        """One rank REF refreshes every bank: per-bank counts match."""
        trace = RankTrace("r", [RankInterval.of([(0, 5), (1, 9)])] * 7)
        result = RankSimulator(
            lambda bank: NullTracker(),
            EngineConfig(num_banks=2, trh=1e9, num_rows=1024),
        ).run(trace)
        assert result.refreshes == 7
        assert [r.refreshes for r in result.per_bank] == [7, 7]

    def test_postponement_is_rank_scoped(self):
        trace = RankTrace(
            "p", [RankInterval.of([(1, 5)], postpone=True)] * 10
        )
        result = RankSimulator(
            lambda bank: NullTracker(),
            EngineConfig(
                num_banks=2, trh=1e9, num_rows=1024,
                allow_postponement=True,
            ),
        ).run(trace)
        # Ceiling of 4 postponed: all owed REFs still land by the end.
        assert result.refreshes == 10

    def test_rejects_out_of_range_bank(self):
        trace = RankTrace("bad", [RankInterval.of([(5, 1)])])
        simulator = RankSimulator(
            lambda bank: NullTracker(),
            EngineConfig(num_banks=2, num_rows=1024),
        )
        with pytest.raises(ValueError):
            simulator.run(trace)

    def test_rejects_zero_banks(self):
        with pytest.raises(ValueError):
            RankSimulator(
                lambda bank: NullTracker(), EngineConfig(num_banks=0)
            )

    def test_legacy_positional_num_banks_rejected_clearly(self):
        """The pre-rank API took num_banks as the second positional;
        passing it that way now gets a pointed TypeError, not a crash
        deep in config access."""
        with pytest.raises(TypeError, match="num_banks=N"):
            RankSimulator(lambda bank: NullTracker(), 4)

    def test_tracker_factory_called_per_bank(self):
        built = []

        def factory(bank):
            built.append(bank)
            return NullTracker()

        RankSimulator(factory, EngineConfig(num_banks=3, num_rows=1024))
        assert built == [0, 1, 2]

    def test_run_rank_attack_convenience(self):
        trace = cross_bank_decoy(
            500, 2, AttackParams(max_act=8, intervals=20), postponed=4
        )
        result = run_rank_attack(
            mint_factory(max_act=8),
            trace,
            trh=1e9,
            num_banks=2,
            num_rows=2048,
            allow_postponement=True,
        )
        assert result.num_banks == 2
        assert result.per_bank[0].demand_acts > 0

    def test_legacy_per_bank_trace_list_still_runs(self):
        """The pre-rank fan-out input format: one row trace per bank."""
        params = AttackParams(max_act=8, intervals=30)
        traces = [double_sided(params, victim=500)] * 2
        simulator = RankSimulator(
            mint_factory(max_act=8),
            EngineConfig(num_banks=2, trh=1e9, num_rows=1024),
        )
        result = simulator.run(traces)
        assert result.num_banks == 2
        assert all(r.demand_acts > 0 for r in result.per_bank)
        assert result.total_mitigations == result.mitigations

    def test_legacy_tfaw_ceiling_enforced(self):
        params = AttackParams(max_act=8, intervals=5)
        simulator = RankSimulator(
            lambda bank: NullTracker(),
            EngineConfig(num_banks=8, num_rows=1024, concurrent_banks=4),
        )
        with pytest.raises(ValueError):
            simulator.run([double_sided(params, victim=500)] * 5)

    def test_tfaw_ceiling_applies_to_rank_traces_too(self):
        """Bank-addressed input obeys the same physical ceiling as the
        legacy per-bank-trace format."""
        simulator = RankSimulator(
            lambda bank: NullTracker(),
            EngineConfig(num_banks=8, num_rows=1024, concurrent_banks=4),
        )
        trace = RankTrace(
            "wide", [RankInterval.of([(b, 100) for b in range(5)])]
        )
        with pytest.raises(ValueError):
            simulator.run(trace)

    def test_legacy_rank_result_constructible_from_per_bank(self):
        with pytest.warns(DeprecationWarning, match="RankResult"):
            from repro.sim.rank import RankResult

        bank = run_attack(
            NullTracker(), Trace("t", repeat_interval([100], 3)), trh=1e9
        )
        result = RankResult(per_bank=[bank])
        assert result.num_banks == 1
        assert not result.any_flip
        assert result.total_mitigations == 0


class TestCrossBankDecoyExposure:
    def test_target_bank_absorbs_postponed_hammering(self):
        """The §VI-B blow-up, rank edition: with postponement granted,
        the target row's unmitigated run spans a whole super-window."""
        params = AttackParams(max_act=8, intervals=50)
        trace = cross_bank_decoy(500, 2, params, postponed=4)
        result = RankSimulator(
            lambda bank: NullTracker(),
            EngineConfig(
                num_banks=2, trh=1e9, num_rows=2048,
                allow_postponement=True,
            ),
        ).run(trace)
        target_bank = result.per_bank[0]
        # 4 hammer intervals x 8 ACTs per super-window, all on bank 0.
        assert target_bank.max_unmitigated[500] >= 32
        decoy_bank = result.per_bank[1]
        assert 500 not in decoy_bank.max_unmitigated
