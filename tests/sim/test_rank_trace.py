"""Tests for bank-addressed traces and their row-only conversions."""

import pytest

from repro.sim.trace import (
    Interval,
    RankInterval,
    RankTrace,
    Trace,
    lift_trace,
    repeat_interval,
    repeat_rank_interval,
)


class TestIntervalLifting:
    def test_row_only_interval_is_bank_zero(self):
        interval = Interval.of([1, 2, 1])
        assert interval.per_bank == ((0, (1, 2, 1)),)

    def test_rank_interval_groups_by_bank(self):
        interval = RankInterval.of([(1, 10), (0, 20), (1, 11), (0, 21)])
        assert interval.per_bank == ((0, (20, 21)), (1, (10, 11)))

    def test_rank_interval_preserves_order_within_bank(self):
        interval = RankInterval.of([(0, 5), (0, 3), (0, 5)])
        assert interval.acts_for_bank(0) == (5, 3, 5)
        assert interval.acts_for_bank(7) == ()

    def test_per_bank_cached_on_shared_interval(self):
        intervals = repeat_rank_interval([(0, 1), (1, 2)], 100)
        assert intervals[0] is intervals[99]
        assert intervals[0].per_bank is intervals[99].per_bank


class TestRankTrace:
    def trace(self):
        return RankTrace(
            "t",
            [
                RankInterval.of([(0, 1), (1, 5)]),
                RankInterval.of([(1, 5), (1, 6)], postpone=True),
            ],
        )

    def test_counting(self):
        trace = self.trace()
        assert len(trace) == 2
        assert trace.total_acts == 4
        assert trace.banks_touched() == {0, 1}
        assert trace.rows_touched() == {1, 5, 6}
        assert trace.rows_touched(bank=0) == {1}

    def test_budget_validation_is_per_bank(self):
        # 3 ACTs in one interval, but at most 2 on any single bank.
        trace = RankTrace(
            "t", [RankInterval.of([(0, 1), (0, 2), (1, 3)])]
        )
        trace.validate(max_act=2)
        with pytest.raises(ValueError):
            trace.validate(max_act=1)

    def test_bank_range_validation(self):
        trace = self.trace()
        trace.validate(max_act=8, num_banks=2)
        with pytest.raises(ValueError):
            trace.validate(max_act=8, num_banks=1)

    def test_tfaw_validation(self):
        trace = RankTrace(
            "t", [RankInterval.of([(b, 1) for b in range(4)])]
        )
        trace.validate(max_act=8, concurrent_banks=4)
        with pytest.raises(ValueError):
            trace.validate(max_act=8, concurrent_banks=3)

    def test_negative_bank_rejected(self):
        trace = RankTrace("t", [RankInterval.of([(-1, 1)])])
        with pytest.raises(ValueError):
            trace.validate(max_act=8)


class TestConversions:
    def test_lift_then_project_round_trips(self):
        base = Trace("base", repeat_interval([7, 8], 3, postpone=True))
        lifted = lift_trace(base, bank=2)
        assert lifted.banks_touched() == {2}
        projected = lifted.bank_trace(2)
        assert [i.acts for i in projected] == [i.acts for i in base]
        assert all(i.postpone for i in projected)

    def test_merge_pads_and_ors_postpone(self):
        a = Trace("a", [Interval.of([1]), Interval.of([2], postpone=True)])
        b = Trace("b", [Interval.of([9])])
        merged = RankTrace.from_bank_traces("m", [a, b])
        assert len(merged) == 2
        assert merged.intervals[0].acts == ((0, 1), (1, 9))
        # Bank 1 ran out of intervals; bank 0's postpone flag survives.
        assert merged.intervals[1].acts == ((0, 2),)
        assert merged.intervals[1].postpone

    def test_merge_then_project_recovers_banks(self):
        a = Trace("a", repeat_interval([1, 2], 2))
        b = Trace("b", repeat_interval([3], 2))
        merged = RankTrace.from_bank_traces("m", {0: a, 3: b})
        traces = merged.bank_traces()
        assert sorted(traces) == [0, 3]
        assert [i.acts for i in traces[0]] == [(1, 2), (1, 2)]
        assert [i.acts for i in traces[3]] == [(3,), (3,)]

    def test_merge_empty(self):
        assert len(RankTrace.from_bank_traces("m", [])) == 0
