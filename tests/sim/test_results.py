"""Tests for the result records."""

from repro.dram.rowstate import FlipEvent
from repro.sim.results import SimResult


def make_result(**overrides):
    defaults = dict(
        tracker="MINT",
        trace="test-trace",
        intervals=100,
        demand_acts=7300,
        refreshes=100,
        mitigations=95,
        transitive_mitigations=2,
        pseudo_mitigations=0,
        flips=[],
        max_disturbance=73.0,
        most_disturbed_row=999,
    )
    defaults.update(overrides)
    return SimResult(**defaults)


class TestSimResult:
    def test_not_failed_without_flips(self):
        assert not make_result().failed

    def test_failed_with_flips(self):
        flip = FlipEvent(row=10, disturbance=4800.0, time_ns=1e6)
        assert make_result(flips=[flip]).failed

    def test_mitigation_rate(self):
        assert make_result().mitigation_rate == 0.95

    def test_mitigation_rate_no_refreshes(self):
        assert make_result(refreshes=0).mitigation_rate == 0.0

    def test_summary_ok(self):
        summary = make_result().summary()
        assert "[ok]" in summary
        assert "MINT" in summary
        assert "test-trace" in summary

    def test_summary_flip(self):
        flip = FlipEvent(row=10, disturbance=4800.0, time_ns=1e6)
        assert "[FLIP]" in make_result(flips=[flip]).summary()

    def test_transitive_count_in_summary(self):
        assert "2 transitive" in make_result().summary()


class TestResultCsvGeometry:
    """Every CSV row of a multi-rank export must carry the channel's
    real geometry — bank-scope rows used to fall back to 1/1 because a
    bank payload records neither ``num_ranks`` nor ``num_banks``."""

    def _channel_result(self, num_ranks=2, num_banks=3):
        from repro.sim.results import ChannelSimResult, RankSimResult

        per_rank = [
            RankSimResult(
                trace="t",
                intervals=10,
                refreshes=10,
                per_bank=[
                    make_result(trace="t", intervals=10)
                    for _ in range(num_banks)
                ],
            )
            for _ in range(num_ranks)
        ]
        return ChannelSimResult(trace="t", intervals=10, per_rank=per_rank)

    def test_bank_rows_carry_channel_geometry(self):
        from repro.sim.results import result_csv_rows

        rows = result_csv_rows(self._channel_result().to_payload())
        assert len(rows) == 1 + 2 * (1 + 3)
        for row in rows:
            assert row["num_ranks"] == 2, row["scope"]
            assert row["num_banks"] == 3, row["scope"]

    def test_multi_rank_csv_round_trip(self, tmp_path):
        """Geometry survives a real CSV write/read cycle."""
        import csv

        from repro.sim.results import RESULT_CSV_COLUMNS, result_csv_rows

        rows = result_csv_rows(self._channel_result().to_payload())
        path = tmp_path / "out.csv"
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=RESULT_CSV_COLUMNS)
            writer.writeheader()
            writer.writerows(rows)
        with path.open(newline="") as handle:
            read_back = list(csv.DictReader(handle))
        assert len(read_back) == len(rows)
        scopes = [row["scope"] for row in read_back]
        assert scopes[0] == "channel"
        assert scopes.count("rank") == 2
        assert scopes.count("bank") == 6
        for row in read_back:
            assert row["num_ranks"] == "2"
            assert row["num_banks"] == "3"

    def test_standalone_rank_payload_defaults_to_one_rank(self):
        from repro.sim.results import RankSimResult, result_csv_rows

        rank = RankSimResult(
            trace="t",
            intervals=5,
            refreshes=5,
            per_bank=[make_result(trace="t", intervals=5) for _ in range(2)],
        )
        rows = result_csv_rows(rank.to_payload())
        for row in rows:
            assert row["num_ranks"] == 1
            assert row["num_banks"] == 2
