"""Tests for the result records."""

from repro.dram.rowstate import FlipEvent
from repro.sim.results import SimResult


def make_result(**overrides):
    defaults = dict(
        tracker="MINT",
        trace="test-trace",
        intervals=100,
        demand_acts=7300,
        refreshes=100,
        mitigations=95,
        transitive_mitigations=2,
        pseudo_mitigations=0,
        flips=[],
        max_disturbance=73.0,
        most_disturbed_row=999,
    )
    defaults.update(overrides)
    return SimResult(**defaults)


class TestSimResult:
    def test_not_failed_without_flips(self):
        assert not make_result().failed

    def test_failed_with_flips(self):
        flip = FlipEvent(row=10, disturbance=4800.0, time_ns=1e6)
        assert make_result(flips=[flip]).failed

    def test_mitigation_rate(self):
        assert make_result().mitigation_rate == 0.95

    def test_mitigation_rate_no_refreshes(self):
        assert make_result(refreshes=0).mitigation_rate == 0.0

    def test_summary_ok(self):
        summary = make_result().summary()
        assert "[ok]" in summary
        assert "MINT" in summary
        assert "test-trace" in summary

    def test_summary_flip(self):
        flip = FlipEvent(row=10, disturbance=4800.0, time_ns=1e6)
        assert "[FLIP]" in make_result(flips=[flip]).summary()

    def test_transitive_count_in_summary(self):
        assert "2 transitive" in make_result().summary()
