"""Tests for the Row-Press simulation (paper Appendix C)."""

import random

import pytest

from repro.core.mint import MintTracker
from repro.core.rowpress import RowPressMintTracker, equivalent_activations
from repro.dram.timing import DEFAULT_TIMING
from repro.sim.rowpress import (
    RowPressBankSimulator,
    TimedAct,
    TimedInterval,
    TimedTrace,
    rowpress_trace,
)


class TestTimedTrace:
    def test_generator_packs_interval(self):
        trace = rowpress_trace(row=100, t_on_ns=1000.0, intervals=5)
        per_interval = len(trace.intervals[0].acts)
        # ~3490 ns budget / ~1016 ns per act = 3.
        assert per_interval == 3

    def test_long_open_means_few_acts(self):
        long_open = rowpress_trace(100, 3400.0, 1)
        assert len(long_open.intervals[0].acts) == 1

    def test_budget_validation(self):
        trace = TimedTrace(
            "bad", [TimedInterval(tuple(TimedAct(1, 3000.0) for _ in range(2)))]
        )
        with pytest.raises(ValueError):
            trace.validate(DEFAULT_TIMING)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            TimedAct(1, -1.0)


class TestRowPressDamage:
    def test_rowpress_beats_plain_mint_below_trh_acts(self):
        """The Appendix C vulnerability: with tON ~ 1 us each activation
        deposits ~21 EACT of disturbance, but plain MINT counts it as
        one activation — the victim crosses TRH with ~TRH/21 ACTs."""
        trh = 2000
        tracker = MintTracker(rng=random.Random(1))
        simulator = RowPressBankSimulator(tracker, trh=trh)
        trace = rowpress_trace(row=1000, t_on_ns=1000.0, intervals=300)
        result = simulator.run(trace)
        assert result.failed
        assert result.demand_acts < trh  # far fewer ACTs than TRH

    def test_impress_extension_holds(self):
        """MINT+ImPress advances CAN by EACT: long-open rows are
        selected proportionally more often and the victim is refreshed
        in time."""
        trh = 2000
        tracker = RowPressMintTracker(rng=random.Random(1))
        simulator = RowPressBankSimulator(tracker, trh=trh)
        trace = rowpress_trace(row=1000, t_on_ns=1000.0, intervals=300)
        result = simulator.run(trace)
        assert not result.failed
        assert result.mitigations > 100

    def test_normal_traffic_equivalent_for_both(self):
        """With ordinary open times the two trackers behave alike."""
        t_on = DEFAULT_TIMING.t_rc_ns - DEFAULT_TIMING.t_rp_ns
        outcomes = {}
        for name, tracker in (
            ("plain", MintTracker(rng=random.Random(2))),
            ("impress", RowPressMintTracker(rng=random.Random(2))),
        ):
            simulator = RowPressBankSimulator(tracker, trh=500)
            result = simulator.run(
                rowpress_trace(1000, t_on, intervals=200, name="normal")
            )
            outcomes[name] = result.failed
        assert outcomes["plain"] == outcomes["impress"] is False

    def test_eact_weighting_in_oracle(self):
        """One 5-tREFI Row-Press activation deposits ~400 disturbance."""
        tracker = MintTracker(rng=random.Random(3))
        simulator = RowPressBankSimulator(tracker, trh=1e9)
        t_on = 3400.0
        trace = rowpress_trace(1000, t_on, intervals=1)
        simulator.run(trace)
        model = simulator.device.banks[0]
        expected = equivalent_activations(t_on)
        assert model.peak_disturbance(999) == pytest.approx(expected, rel=0.01)
