"""TraceStream pins: streamed == materialized, bit for bit, bounded.

The streaming pipeline's contract is *exact* equivalence with the
materialized path — same :class:`~repro.sim.results.RankSimResult`
JSON, for every registry tracker, whatever the chunking — plus budget
validation under identical rules and bounded memory regardless of
horizon.
"""

import json
import tracemalloc
from dataclasses import asdict

import pytest
from hypothesis import given, strategies as st

from repro.attacks.base import AttackParams
from repro.attacks.rank import (
    cross_bank_decoy,
    cross_bank_decoy_stream,
    rank_stripe,
)
from repro.sim.engine import EngineConfig, RankSimulator
from repro.sim.trace import (
    CycleStream,
    GeneratorStream,
    MaterializedStream,
    RankInterval,
    RankTrace,
    as_trace_stream,
    lift_trace,
    Trace,
    Interval,
)
from repro.trackers.registry import available_trackers, bank_tracker_factory
from tests.property.settings import STANDARD_SETTINGS

CONFIG_KWARGS = dict(trh=200.0, num_rows=4096, refi_per_refw=64)


def _canonical(result) -> str:
    return json.dumps(asdict(result), sort_keys=True)


def _run(tracker, trace, num_banks=2, seed=11, **overrides):
    kwargs = {**CONFIG_KWARGS, **overrides}
    sim = RankSimulator(
        bank_tracker_factory(tracker, base_seed=seed, max_act=8),
        EngineConfig(num_banks=num_banks, **kwargs),
    )
    return sim.run(trace)


class TestStreamEquivalence:
    @pytest.mark.parametrize("tracker", available_trackers())
    def test_streamed_reproduces_materialized_for_every_tracker(
        self, tracker
    ):
        """The headline satellite pin: a streamed trace reproduces the
        materialized RankSimResult exactly for every registry tracker."""
        params = AttackParams(max_act=8, intervals=240, base_row=64)
        trace = rank_stripe(6, 2, params)
        materialized = _run(tracker, trace)
        streamed = _run(tracker, MaterializedStream(trace, chunk_intervals=17))
        assert _canonical(materialized) == _canonical(streamed)

    @pytest.mark.parametrize("tracker", available_trackers())
    def test_cycle_stream_decoy_matches_materialized(self, tracker):
        params = AttackParams(max_act=8, intervals=150, base_row=64)
        materialized = cross_bank_decoy(500, 2, params)
        stream = cross_bank_decoy_stream(500, 2, params)
        assert stream.horizon == len(materialized)
        a = _run(tracker, materialized, allow_postponement=True)
        b = _run(tracker, stream, allow_postponement=True)
        assert _canonical(a) == _canonical(b)

    @given(
        chunk=st.integers(1, 64),
        intervals=st.integers(0, 200),
        pattern_len=st.integers(1, 5),
    )
    @STANDARD_SETTINGS
    def test_cycle_stream_chunking_never_changes_bits(
        self, chunk, intervals, pattern_len
    ):
        """Any chunk size yields the same result as the one-chunk list."""
        pattern = [
            RankInterval.of([(0, 8 + 2 * i), (1, 40 + i)])
            for i in range(pattern_len)
        ]
        full, partial = divmod(intervals, pattern_len)
        expected_intervals = pattern * full + pattern[:partial]
        materialized = RankTrace("cyc", expected_intervals)
        stream = CycleStream("cyc", pattern, intervals, chunk_intervals=chunk)
        assert list(stream) == expected_intervals
        a = _run("mint", materialized)
        b = _run("mint", stream)
        assert _canonical(a) == _canonical(b)

    def test_generator_stream_matches_materialized(self):
        def gen():
            for i in range(300):
                yield RankInterval.of([(i % 2, 16 + (i % 5))])

        stream = GeneratorStream("gen", gen, horizon=300)
        materialized = RankTrace("gen", list(gen()))
        assert _canonical(_run("mint", stream)) == _canonical(
            _run("mint", materialized)
        )

    def test_engine_results_row_only_vs_stream_lift(self):
        """as_trace_stream lifts a row trace exactly like the engine."""
        trace = Trace("row", [Interval.of([5, 7, 5])] * 40)
        direct = _run("mint", trace, num_banks=1)
        streamed = _run("mint", as_trace_stream(trace), num_banks=1)
        assert _canonical(direct) == _canonical(streamed)


class TestStreamValidation:
    def test_declared_act_budget_fails_fast(self):
        interval = RankInterval.of([(0, r) for r in range(200)])
        stream = CycleStream("fat", [interval], 10_000_000)
        assert stream.act_budget == 200
        sim = RankSimulator(
            bank_tracker_factory("mint", base_seed=1, max_act=8),
            EngineConfig(num_banks=1, **CONFIG_KWARGS),
        )
        assert sim.config.timing.max_act < 200
        with pytest.raises(ValueError, match="declares up to 200 ACTs"):
            sim.run(stream)
        assert sim.intervals == 0  # rejected before simulating anything

    def test_chunk_validation_reports_global_interval_index(self):
        ok = RankInterval.of([(0, 1)])
        bad = RankInterval.of([(9, 1)])  # bank out of range

        def gen():
            yield from [ok] * 130
            yield bad

        stream = GeneratorStream("late-bad", gen, chunk_intervals=100)
        sim = RankSimulator(
            bank_tracker_factory("mint", base_seed=1, max_act=8),
            EngineConfig(num_banks=2, **CONFIG_KWARGS),
        )
        with pytest.raises(ValueError, match="interval 130 addresses bank 9"):
            sim.run(stream)

    def test_stream_error_messages_match_materialized(self):
        bad = RankTrace("bad", [RankInterval.of([(3, 1)])])
        sim_kwargs = dict(num_banks=2, **CONFIG_KWARGS)
        with pytest.raises(ValueError) as materialized_error:
            RankSimulator(
                bank_tracker_factory("mint", base_seed=1, max_act=8),
                EngineConfig(**sim_kwargs),
            ).run(bad)
        with pytest.raises(ValueError) as streamed_error:
            RankSimulator(
                bank_tracker_factory("mint", base_seed=1, max_act=8),
                EngineConfig(**sim_kwargs),
            ).run(MaterializedStream(bad))
        assert str(materialized_error.value) == str(streamed_error.value)


class TestBoundedMemory:
    @pytest.mark.slow
    def test_stream_peak_memory_is_flat_in_horizon(self):
        """A 64x longer streamed run must not cost 64x the memory.

        The engine holds one chunk plus bounded caches; a materialized
        trace would hold 8 bytes of pointer per tREFI. The factor-2
        ceiling leaves room for allocator noise while catching any
        accidental materialization (which would blow past 10x).
        """
        interval = RankInterval.of([(0, 5), (0, 7)])

        def peak(horizon: int) -> int:
            stream = CycleStream("mem", [interval], horizon,
                                 chunk_intervals=1024)
            sim = RankSimulator(
                bank_tracker_factory("mint", base_seed=1, max_act=8),
                EngineConfig(num_banks=1, **CONFIG_KWARGS),
            )
            tracemalloc.start()
            sim.run(stream)
            _, peak_bytes = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            return peak_bytes

        # Warm-up run absorbs one-time allocations (caches, numpy state).
        peak(1_000)
        short = peak(4_000)
        long = peak(256_000)
        assert long <= 2 * short + 64 * 1024, (
            f"streamed peak grew with horizon: {short} -> {long} bytes"
        )
