"""Tests for the trace representation."""

import pytest

from repro.sim.trace import Interval, Trace, repeat_interval


class TestInterval:
    def test_of_builds_tuple(self):
        interval = Interval.of([1, 2, 3])
        assert interval.acts == (1, 2, 3)
        assert not interval.postpone

    def test_postpone_flag(self):
        assert Interval.of([], postpone=True).postpone


class TestTrace:
    def test_len_and_iteration(self):
        trace = Trace("t", [Interval.of([1]), Interval.of([2, 3])])
        assert len(trace) == 2
        assert [i.acts for i in trace] == [(1,), (2, 3)]

    def test_total_acts(self):
        trace = Trace("t", repeat_interval([1, 2], 5))
        assert trace.total_acts == 10

    def test_rows_touched(self):
        trace = Trace("t", [Interval.of([1, 2]), Interval.of([2, 9])])
        assert trace.rows_touched() == {1, 2, 9}

    def test_validate_accepts_budgeted(self):
        trace = Trace("t", repeat_interval([0] * 73, 3))
        trace.validate(max_act=73)

    def test_validate_rejects_over_budget(self):
        trace = Trace("t", [Interval.of([0] * 74)])
        with pytest.raises(ValueError):
            trace.validate(max_act=73)

    def test_repeat_interval_shares_immutable(self):
        intervals = repeat_interval([5], 3)
        assert len(intervals) == 3
        assert all(i.acts == (5,) for i in intervals)
