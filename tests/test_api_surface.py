"""Public-API snapshot: the exported surface is part of the contract.

These sets are deliberate, reviewed snapshots of ``__all__``. A failing
test here means the public surface changed: if that was intentional,
update the snapshot *in the same commit* and mention the change in the
commit message; if not, you just caught a silent API break before it
shipped. (The satellite guard requested alongside the Scenario API —
future refactors must not drift the seams every downstream consumer
imports from.)
"""

import importlib

import pytest

#: repro — the package front door.
REPRO_SURFACE = frozenset({
    "AttackSpec",
    "BANKS_PER_RANK",
    "BankSimulator",
    "CONCURRENT_BANKS",
    "ChannelSimResult",
    "ChannelSimulator",
    "ChannelTrace",
    "DDR5Timing",
    "DEFAULT_BLAST_RADIUS",
    "DEFAULT_TARGET_TTF_YEARS",
    "DEFAULT_TIMING",
    "DelayedMitigationQueue",
    "DramDevice",
    "EngineConfig",
    "InDramParaTracker",
    "MAX_POSTPONED_REFRESHES",
    "MintTracker",
    "MithrilTracker",
    "MitigationRequest",
    "ParfmTracker",
    "PrctTracker",
    "REFI_PER_REFW",
    "ROWS_PER_BANK",
    "RankSimResult",
    "RankSimulator",
    "RankTrace",
    "RfmConfig",
    "RfmController",
    "RowDisturbanceModel",
    "RowPressMintTracker",
    "Scenario",
    "Session",
    "SimResult",
    "Trace",
    "TraceStream",
    "Tracker",
    "TrackerSpec",
    "__version__",
    "available_trackers",
    "bank_tracker_factory",
    "channel_tracker_factory",
    "equivalent_activations",
    "make_tracker",
    "run_attack",
    "run_channel_attack",
    "run_rank_attack",
    "run_scenario",
    "system_mttf_years",
})

#: repro.sim — the simulation stack.
SIM_SURFACE = frozenset({
    "BankSimulator",
    "ChannelSimResult",
    "ChannelSimulator",
    "ChannelTrace",
    "CycleStream",
    "EngineConfig",
    "GeneratorStream",
    "Interval",
    "MaterializedStream",
    "MonteCarloResult",
    "RankInterval",
    "RankResult",
    "RankSimResult",
    "RankSimulator",
    "RankTrace",
    "SimResult",
    "Trace",
    "TraceStream",
    "as_trace_stream",
    "canonical_json",
    "derive_rng",
    "estimate_failure_probability",
    "lift_trace",
    "repeat_interval",
    "repeat_rank_interval",
    "result_csv_rows",
    "run_attack",
    "run_channel_attack",
    "run_rank_attack",
    "scaled_timing",
    "scenario_failure_probability",
    "stable_hash",
    "stable_seed",
    "system_mttf_years",
    "with_dmq",
})

#: repro.scenario — the canonical declarative entry point.
SCENARIO_SURFACE = frozenset({
    "SCENARIO_VERSION",
    "AttackSpec",
    "Scenario",
    "Session",
    "TrackerSpec",
    "run_scenario",
})

#: repro.exp — the experiment service (sharded scheduler, store,
#: journal, read API).
EXP_SURFACE = frozenset({
    "AttackSpec",
    "ExperimentGrid",
    "ExperimentPoint",
    "ExperimentResult",
    "JournalState",
    "PointConfig",
    "QueryAPI",
    "ResultStore",
    "RunJournal",
    "RunReport",
    "SCHEMA_VERSION",
    "ShardReport",
    "StoreFormatError",
    "TaskShard",
    "TrackerSpec",
    "channel_shootout_grid",
    "journal_for_store",
    "make_server",
    "plan_shards",
    "postponement_grid",
    "preset_grid",
    "rank_shootout_grid",
    "run_grid",
    "run_point",
    "serve_store",
    "shard_key",
    "shootout_grid",
    "summarise_channel_result",
    "summarise_rank_result",
    "summarise_sim_result",
    "sweep_csv_rows",
})

SNAPSHOTS = {
    "repro": REPRO_SURFACE,
    "repro.sim": SIM_SURFACE,
    "repro.scenario": SCENARIO_SURFACE,
    "repro.exp": EXP_SURFACE,
}


@pytest.mark.parametrize("module_name", sorted(SNAPSHOTS))
def test_surface_matches_snapshot(module_name):
    module = importlib.import_module(module_name)
    exported = set(module.__all__)
    snapshot = SNAPSHOTS[module_name]
    added = exported - snapshot
    removed = snapshot - exported
    assert exported == snapshot, (
        f"{module_name} public surface drifted: "
        f"added {sorted(added) or 'nothing'}, "
        f"removed {sorted(removed) or 'nothing'} — update the snapshot "
        f"in tests/test_api_surface.py if this change is deliberate"
    )


@pytest.mark.parametrize("module_name", sorted(SNAPSHOTS))
def test_every_exported_name_resolves(module_name):
    module = importlib.import_module(module_name)
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.{name}"


def test_shared_spec_types_are_the_same_objects():
    """exp re-exports the scenario spec classes, not copies."""
    import repro
    import repro.exp
    import repro.scenario

    assert repro.TrackerSpec is repro.scenario.TrackerSpec
    assert repro.exp.TrackerSpec is repro.scenario.TrackerSpec
    assert repro.exp.AttackSpec is repro.scenario.AttackSpec
