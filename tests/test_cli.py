"""Tests for the command-line interface."""

import csv
import io
import json

import pytest

from repro.cli import main
from repro.scenario import Scenario


def scenario_file(tmp_path, **overrides):
    """Write a small scaled-regime scenario to disk, return its path."""
    payload = {
        "tracker": {"name": overrides.pop("tracker", "mint")},
        "attack": {"name": overrides.pop("attack", "double-sided")},
        "trh": 60.0,
        "intervals": 64,
        "max_act": 8,
        "num_rows": 1024,
        "refi_per_refw": 64,
        "scaled_timing": True,
        "seed": 3,
        **overrides,
    }
    path = tmp_path / "scenario.json"
    path.write_text(json.dumps(payload))
    return path


class TestRunCommand:
    def test_run_scenario_file(self, capsys, tmp_path):
        code = main(["run", str(scenario_file(tmp_path))])
        out = capsys.readouterr().out
        assert code == 0
        assert "[ok]" in out and "MINT" in out

    def test_run_detects_flips(self, capsys, tmp_path):
        path = scenario_file(tmp_path, tracker="none")
        code = main(["run", str(path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "FLIP" in out and "first flip" in out

    def test_run_json_format_is_the_result_payload(self, capsys, tmp_path):
        path = scenario_file(tmp_path)
        code = main(["run", str(path), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["failed"] is False
        assert payload["num_banks"] == 1
        assert payload["per_bank"][0]["demand_acts"] == 512

    def test_run_csv_format(self, capsys, tmp_path):
        path = scenario_file(tmp_path, num_banks=2, attack="rank-stripe")
        code = main(["run", str(path), "--format", "csv"])
        rows = list(csv.DictReader(io.StringIO(capsys.readouterr().out)))
        assert code == 0
        # One aggregate rank row plus one row per bank.
        assert [row["scope"] for row in rows] == ["rank", "bank", "bank"]

    def test_run_windows_monte_carlo(self, capsys, tmp_path):
        path = scenario_file(tmp_path, trh=30.0)
        code = main(["run", str(path), "--windows", "6", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code in (0, 1)
        assert payload["windows"] == 6
        assert code == (1 if payload["failures"] else 0)

    def test_missing_file_is_a_usage_error(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", str(tmp_path / "absent.json")])
        assert excinfo.value.code == 2

    def test_invalid_scenario_is_a_usage_error(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"tracker": {"name": "mint"}}))
        with pytest.raises(SystemExit) as excinfo:
            main(["run", str(path)])
        assert excinfo.value.code == 2
        assert "attack" in capsys.readouterr().out


class TestScenarioCommand:
    def test_show(self, capsys, tmp_path):
        path = scenario_file(tmp_path)
        assert main(["scenario", "show", str(path)]) == 0
        out = capsys.readouterr().out
        assert "mint vs double-sided" in out
        assert "fingerprint" in out

    def test_show_json_round_trips(self, capsys, tmp_path):
        path = scenario_file(tmp_path)
        assert main(["scenario", "show", str(path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        original = Scenario.from_payload(json.loads(path.read_text()))
        assert Scenario.from_payload(payload) == original

    def test_fingerprint(self, capsys, tmp_path):
        path = scenario_file(tmp_path)
        assert main(["scenario", "fingerprint", str(path)]) == 0
        printed = capsys.readouterr().out.strip()
        expected = Scenario.from_payload(
            json.loads(path.read_text())
        ).fingerprint()
        assert printed == expected

    def test_repo_example_scenario_runs(self, capsys):
        """The README's examples/scenario.json must stay runnable."""
        from pathlib import Path

        example = Path(__file__).parent.parent / "examples" / "scenario.json"
        assert main(["run", str(example)]) == 0
        assert "[ok]" in capsys.readouterr().out


class TestAttackCommand:
    def test_mint_survives_double_sided(self, capsys):
        code = main([
            "attack", "--attack", "double-sided", "--tracker", "mint",
            "--trh", "4800", "--intervals", "300",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "[ok]" in out

    def test_unprotected_fails(self, capsys):
        code = main([
            "attack", "--attack", "double-sided", "--tracker", "none",
            "--trh", "1000", "--intervals", "300",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "FLIP" in out
        assert "first flip" in out

    def test_trr_falls_to_many_sided(self, capsys):
        code = main([
            "attack", "--attack", "many-sided", "--tracker", "trr",
            "--trh", "1300", "--intervals", "300",
        ])
        assert code == 1

    def test_dmq_flag(self, capsys):
        code = main([
            "attack", "--attack", "single-sided", "--tracker", "mint",
            "--dmq", "--allow-postponement",
            "--trh", "4800", "--intervals", "200",
        ])
        assert code == 0
        assert "MINT+DMQ" in capsys.readouterr().out


class TestMintrhCommand:
    @pytest.mark.parametrize(
        "scheme,expected", [("mint", 1481), ("rfm32", 700), ("rfm16", 360)]
    )
    def test_schemes(self, capsys, scheme, expected):
        code = main(["mintrh", "--scheme", scheme])
        out = capsys.readouterr().out
        assert code == 0
        assert str(expected) in out

    def test_custom_target(self, capsys):
        code = main(["mintrh", "--scheme", "mint", "--target-ttf", "1000"])
        assert code == 0
        assert "1,000 years" in capsys.readouterr().out


class TestTableCommand:
    @pytest.mark.parametrize("which", ["3", "4", "5", "7", "9"])
    def test_tables_print(self, capsys, which):
        assert main(["table", "--which", which]) == 0
        assert capsys.readouterr().out.strip()

    def test_table3_contents(self, capsys):
        main(["table", "--which", "3"])
        out = capsys.readouterr().out
        assert "MINT" in out and "PRCT" in out and "Mithril" in out


class TestExpCommand:
    def _run_args(self, store):
        return [
            "exp", "run",
            "--trackers", "mint,none",
            "--attacks", "single-sided",
            "--trh", "300", "--intervals", "120",
            "--workers", "2", "--seed", "5",
            "--store", str(store),
        ]

    def test_run_reports_grid_and_flips(self, capsys, tmp_path):
        store = tmp_path / "store.json"
        code = main(self._run_args(store))
        out = capsys.readouterr().out
        assert code == 1  # the unprotected point flips
        assert "2 points (2 executed, 0 cached)" in out
        assert "[FLIP] none" in out
        assert "[  ok] mint" in out
        assert store.exists()

    def test_rerun_is_cached(self, capsys, tmp_path):
        store = tmp_path / "store.json"
        main(self._run_args(store))
        capsys.readouterr()
        main(self._run_args(store))
        assert "(0 executed, 2 cached)" in capsys.readouterr().out

    def test_status_lists_store(self, capsys, tmp_path):
        store = tmp_path / "store.json"
        main(self._run_args(store))
        capsys.readouterr()
        code = main(["exp", "status", "--store", str(store)])
        out = capsys.readouterr().out
        assert code == 0
        assert "2 cached result(s)" in out
        assert "mint" in out and "none" in out

    def test_run_without_grid_errors(self, capsys):
        code = main(["exp", "run"])
        assert code == 2
        assert "--preset" in capsys.readouterr().out

    def test_exp_run_json_format(self, capsys, tmp_path):
        args = self._run_args(tmp_path / "store.json")
        code = main(args + ["--format", "json"])
        payloads = json.loads(capsys.readouterr().out)
        assert code == 1
        assert len(payloads) == 2
        assert {p["tracker"] for p in payloads} == {"mint", "none"}
        assert any(p["metrics"]["failed"] for p in payloads)

    def test_exp_run_csv_format(self, capsys, tmp_path):
        args = self._run_args(tmp_path / "store.json")
        code = main(args + ["--format", "csv"])
        rows = list(csv.DictReader(io.StringIO(capsys.readouterr().out)))
        assert code == 1
        assert {row["tracker"] for row in rows} == {"mint", "none"}
        assert {row["failed"] for row in rows} == {"True", "False"}


class TestPlanCommand:
    def test_plain_mint_for_high_trh(self, capsys):
        assert main(["plan", "--trh-d", "4800"]) == 0
        out = capsys.readouterr().out
        assert "use MINT " in out or "use MINT\n" in out or "use MINT (" in out

    def test_rfm16_for_low_trh(self, capsys):
        assert main(["plan", "--trh-d", "400"]) == 0
        assert "RFM16" in capsys.readouterr().out

    def test_prac_below_reach(self, capsys):
        assert main(["plan", "--trh-d", "200"]) == 1
        assert "PRAC" in capsys.readouterr().out
