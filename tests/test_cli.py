"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestAttackCommand:
    def test_mint_survives_double_sided(self, capsys):
        code = main([
            "attack", "--attack", "double-sided", "--tracker", "mint",
            "--trh", "4800", "--intervals", "300",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "[ok]" in out

    def test_unprotected_fails(self, capsys):
        code = main([
            "attack", "--attack", "double-sided", "--tracker", "none",
            "--trh", "1000", "--intervals", "300",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "FLIP" in out
        assert "first flip" in out

    def test_trr_falls_to_many_sided(self, capsys):
        code = main([
            "attack", "--attack", "many-sided", "--tracker", "trr",
            "--trh", "1300", "--intervals", "300",
        ])
        assert code == 1

    def test_dmq_flag(self, capsys):
        code = main([
            "attack", "--attack", "single-sided", "--tracker", "mint",
            "--dmq", "--allow-postponement",
            "--trh", "4800", "--intervals", "200",
        ])
        assert code == 0
        assert "MINT+DMQ" in capsys.readouterr().out


class TestMintrhCommand:
    @pytest.mark.parametrize(
        "scheme,expected", [("mint", 1481), ("rfm32", 700), ("rfm16", 360)]
    )
    def test_schemes(self, capsys, scheme, expected):
        code = main(["mintrh", "--scheme", scheme])
        out = capsys.readouterr().out
        assert code == 0
        assert str(expected) in out

    def test_custom_target(self, capsys):
        code = main(["mintrh", "--scheme", "mint", "--target-ttf", "1000"])
        assert code == 0
        assert "1,000 years" in capsys.readouterr().out


class TestTableCommand:
    @pytest.mark.parametrize("which", ["3", "4", "5", "7", "9"])
    def test_tables_print(self, capsys, which):
        assert main(["table", "--which", which]) == 0
        assert capsys.readouterr().out.strip()

    def test_table3_contents(self, capsys):
        main(["table", "--which", "3"])
        out = capsys.readouterr().out
        assert "MINT" in out and "PRCT" in out and "Mithril" in out


class TestPlanCommand:
    def test_plain_mint_for_high_trh(self, capsys):
        assert main(["plan", "--trh-d", "4800"]) == 0
        out = capsys.readouterr().out
        assert "use MINT " in out or "use MINT\n" in out or "use MINT (" in out

    def test_rfm16_for_low_trh(self, capsys):
        assert main(["plan", "--trh-d", "400"]) == 0
        assert "RFM16" in capsys.readouterr().out

    def test_prac_below_reach(self, capsys):
        assert main(["plan", "--trh-d", "200"]) == 1
        assert "PRAC" in capsys.readouterr().out
