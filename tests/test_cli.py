"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestAttackCommand:
    def test_mint_survives_double_sided(self, capsys):
        code = main([
            "attack", "--attack", "double-sided", "--tracker", "mint",
            "--trh", "4800", "--intervals", "300",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "[ok]" in out

    def test_unprotected_fails(self, capsys):
        code = main([
            "attack", "--attack", "double-sided", "--tracker", "none",
            "--trh", "1000", "--intervals", "300",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "FLIP" in out
        assert "first flip" in out

    def test_trr_falls_to_many_sided(self, capsys):
        code = main([
            "attack", "--attack", "many-sided", "--tracker", "trr",
            "--trh", "1300", "--intervals", "300",
        ])
        assert code == 1

    def test_dmq_flag(self, capsys):
        code = main([
            "attack", "--attack", "single-sided", "--tracker", "mint",
            "--dmq", "--allow-postponement",
            "--trh", "4800", "--intervals", "200",
        ])
        assert code == 0
        assert "MINT+DMQ" in capsys.readouterr().out


class TestMintrhCommand:
    @pytest.mark.parametrize(
        "scheme,expected", [("mint", 1481), ("rfm32", 700), ("rfm16", 360)]
    )
    def test_schemes(self, capsys, scheme, expected):
        code = main(["mintrh", "--scheme", scheme])
        out = capsys.readouterr().out
        assert code == 0
        assert str(expected) in out

    def test_custom_target(self, capsys):
        code = main(["mintrh", "--scheme", "mint", "--target-ttf", "1000"])
        assert code == 0
        assert "1,000 years" in capsys.readouterr().out


class TestTableCommand:
    @pytest.mark.parametrize("which", ["3", "4", "5", "7", "9"])
    def test_tables_print(self, capsys, which):
        assert main(["table", "--which", which]) == 0
        assert capsys.readouterr().out.strip()

    def test_table3_contents(self, capsys):
        main(["table", "--which", "3"])
        out = capsys.readouterr().out
        assert "MINT" in out and "PRCT" in out and "Mithril" in out


class TestExpCommand:
    def _run_args(self, store):
        return [
            "exp", "run",
            "--trackers", "mint,none",
            "--attacks", "single-sided",
            "--trh", "300", "--intervals", "120",
            "--workers", "2", "--seed", "5",
            "--store", str(store),
        ]

    def test_run_reports_grid_and_flips(self, capsys, tmp_path):
        store = tmp_path / "store.json"
        code = main(self._run_args(store))
        out = capsys.readouterr().out
        assert code == 1  # the unprotected point flips
        assert "2 points (2 executed, 0 cached)" in out
        assert "[FLIP] none" in out
        assert "[  ok] mint" in out
        assert store.exists()

    def test_rerun_is_cached(self, capsys, tmp_path):
        store = tmp_path / "store.json"
        main(self._run_args(store))
        capsys.readouterr()
        main(self._run_args(store))
        assert "(0 executed, 2 cached)" in capsys.readouterr().out

    def test_status_lists_store(self, capsys, tmp_path):
        store = tmp_path / "store.json"
        main(self._run_args(store))
        capsys.readouterr()
        code = main(["exp", "status", "--store", str(store)])
        out = capsys.readouterr().out
        assert code == 0
        assert "2 cached result(s)" in out
        assert "mint" in out and "none" in out

    def test_run_without_grid_errors(self, capsys):
        code = main(["exp", "run"])
        assert code == 2
        assert "--preset" in capsys.readouterr().out


class TestPlanCommand:
    def test_plain_mint_for_high_trh(self, capsys):
        assert main(["plan", "--trh-d", "4800"]) == 0
        out = capsys.readouterr().out
        assert "use MINT " in out or "use MINT\n" in out or "use MINT (" in out

    def test_rfm16_for_low_trh(self, capsys):
        assert main(["plan", "--trh-d", "400"]) == 0
        assert "RFM16" in capsys.readouterr().out

    def test_prac_below_reach(self, capsys):
        assert main(["plan", "--trh-d", "200"]) == 1
        assert "PRAC" in capsys.readouterr().out
