"""Public-API surface tests: imports, exports, and the README snippet."""

import importlib

import pytest

import repro


class TestTopLevelApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.trackers",
            "repro.dram",
            "repro.attacks",
            "repro.sim",
            "repro.analysis",
            "repro.perf",
            "repro.cli",
            "repro.exp",
        ],
    )
    def test_subpackage_exports_resolve(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"

    def test_readme_quickstart_snippet(self):
        """The exact code shown in README.md must work."""
        import random

        from repro import MintTracker, run_attack
        from repro.attacks import AttackParams, double_sided

        tracker = MintTracker(
            max_act=73, transitive=True, rng=random.Random(42)
        )
        trace = double_sided(AttackParams(intervals=1000), victim=1000)
        result = run_attack(tracker, trace, trh=4800)
        assert not result.failed

    def test_docstring_quickstart_snippet(self):
        """The module docstring's example must work too."""
        import random

        from repro import MintTracker, run_attack
        from repro.attacks import AttackParams, double_sided

        tracker = MintTracker(rng=random.Random(1))
        result = run_attack(
            tracker,
            double_sided(AttackParams(intervals=1000)),
            trh=4800,
        )
        assert not result.failed


class TestRegistryMatchesZoo:
    def test_every_paper_tracker_constructible(self):
        from repro import available_trackers, make_tracker

        expected = {
            "mint", "para", "indram-para", "parfm", "prct", "mithril",
            "protrr", "trr", "pride", "graphene", "none",
        }
        assert expected <= set(available_trackers())
        for name in expected:
            tracker = make_tracker(name)
            tracker.on_activate(1)
            tracker.on_refresh()
