"""Tests for PRCT, Mithril, and ProTRR (the counter-based trackers)."""

import pytest

from repro.trackers.mithril import MithrilTracker
from repro.trackers.prct import PrctTracker
from repro.trackers.protrr import ProTrrTracker, VictimRefreshRequest


class TestPrct:
    def test_mitigates_hottest_row(self):
        tracker = PrctTracker(num_rows=1024)
        for _ in range(5):
            tracker.on_activate(7)
        tracker.on_activate(8)
        requests = tracker.on_refresh()
        assert requests[0].row == 7

    def test_counter_removed_after_mitigation(self):
        tracker = PrctTracker(num_rows=1024)
        tracker.on_activate(7)
        tracker.on_refresh()
        assert tracker.count(7) == 0

    def test_observes_mitigation_activations(self):
        """Transitive immunity: victim refreshes bump counters."""
        tracker = PrctTracker(num_rows=1024)
        assert tracker.observes_mitigations
        tracker.on_mitigation_activate(9)
        assert tracker.count(9) == 1

    def test_empty_refresh(self):
        assert PrctTracker(num_rows=16).on_refresh() == []

    def test_mitigation_threshold(self):
        tracker = PrctTracker(num_rows=16, mitigation_threshold=3)
        tracker.on_activate(5)
        assert tracker.on_refresh() == []

    def test_entries_is_row_count(self):
        assert PrctTracker(num_rows=128 * 1024).entries == 128 * 1024


class TestMithril:
    def test_tracked_row_increments(self):
        tracker = MithrilTracker(num_entries=4)
        tracker.on_activate(1)
        tracker.on_activate(1)
        assert tracker.count(1) == 2

    def test_space_saving_replacement(self):
        """A new row replaces the min entry with count min + 1."""
        tracker = MithrilTracker(num_entries=2)
        tracker.on_activate(1)
        tracker.on_activate(1)
        tracker.on_activate(2)
        tracker.on_activate(3)  # evicts row 2 (min count 1)
        assert tracker.count(3) == 2
        assert tracker.count(2) == 0

    def test_never_underestimates_tracked_rows(self):
        """Space-Saving invariant: a tracked row's counter is an upper
        bound on (and at least equal to) its true count since insertion."""
        tracker = MithrilTracker(num_entries=4)
        for _ in range(10):
            tracker.on_activate(1)
        for row in (2, 3, 4, 5, 6):
            tracker.on_activate(row)
        assert tracker.count(1) >= 10

    def test_refresh_drops_counter_to_table_min(self):
        tracker = MithrilTracker(num_entries=4)
        for _ in range(5):
            tracker.on_activate(1)
        tracker.on_activate(2)
        requests = tracker.on_refresh()
        assert requests[0].row == 1
        # The mitigated row lands at the bottom of the table (the
        # steady-state reading of "reduced by the min count").
        assert tracker.count(1) == 1

    def test_observes_mitigations(self):
        assert MithrilTracker().observes_mitigations

    def test_paper_entry_count_storage(self):
        tracker = MithrilTracker(num_entries=677)
        assert tracker.entries == 677
        assert tracker.storage_bits == 677 * (18 + 12)


class TestProTrr:
    def test_credits_victims_not_aggressors(self):
        tracker = ProTrrTracker(num_entries=8)
        tracker.on_activate(10)
        assert tracker.counters.get(9) == 1
        assert tracker.counters.get(11) == 1
        assert 10 not in tracker.counters

    def test_refresh_returns_victim_request(self):
        tracker = ProTrrTracker(num_entries=8)
        for _ in range(3):
            tracker.on_activate(10)
        requests = tracker.on_refresh()
        assert isinstance(requests[0], VictimRefreshRequest)
        assert requests[0].row in (9, 11)

    def test_misra_gries_decrement(self):
        tracker = ProTrrTracker(num_entries=2)
        tracker.on_activate(10)  # victims 9, 11 fill the table
        # Crediting victim 19 decrements (and empties) the full table;
        # victim 21 then inserts into the freed space.
        tracker.on_activate(20)
        assert set(tracker.counters) == {21}

    def test_row_bounds_respected(self):
        tracker = ProTrrTracker(num_entries=8, num_rows=100)
        tracker.on_activate(0)
        assert -1 not in tracker.counters

    def test_blast_radius_two_credits_four_victims(self):
        tracker = ProTrrTracker(num_entries=8, blast_radius=2)
        tracker.on_activate(10)
        assert set(tracker.counters) == {8, 9, 11, 12}


class TestValidation:
    def test_rejects_bad_entries(self):
        with pytest.raises(ValueError):
            MithrilTracker(num_entries=0)
        with pytest.raises(ValueError):
            ProTrrTracker(num_entries=0)
        with pytest.raises(ValueError):
            PrctTracker(num_rows=0)
