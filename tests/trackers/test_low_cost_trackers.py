"""Tests for PARFM, TRR, PrIDE, and Graphene."""

import random

import pytest

from repro.trackers.graphene import GrapheneTracker
from repro.trackers.parfm import ParfmTracker
from repro.trackers.pride import PrideTracker
from repro.trackers.trr import TrrTracker


class TestParfm:
    def test_buffers_up_to_max_act(self):
        tracker = ParfmTracker(max_act=4, rng=random.Random(1))
        for row in range(6):
            tracker.on_activate(row)
        assert len(tracker.buffer) == 4
        assert tracker.dropped_activations == 2

    def test_refresh_picks_buffered_row(self):
        tracker = ParfmTracker(max_act=8, rng=random.Random(1))
        for row in (5, 6, 7):
            tracker.on_activate(row)
        requests = tracker.on_refresh()
        assert requests[0].row in (5, 6, 7)
        assert not tracker.buffer

    def test_uniform_choice(self):
        tracker = ParfmTracker(max_act=2, rng=random.Random(17))
        hits = {1: 0, 2: 0}
        for _ in range(10_000):
            tracker.on_activate(1)
            tracker.on_activate(2)
            hits[tracker.on_refresh()[0].row] += 1
        assert hits[1] == pytest.approx(hits[2], rel=0.1)

    def test_entries_equals_max_act(self):
        assert ParfmTracker(max_act=73).entries == 73

    def test_does_not_observe_mitigations(self):
        """The property that makes PARFM transitive-vulnerable."""
        assert not ParfmTracker().observes_mitigations


class TestTrr:
    def test_mitigates_hot_row(self):
        tracker = TrrTracker(num_entries=4)
        for _ in range(10):
            tracker.on_activate(1)
        assert tracker.on_refresh()[0].row == 1

    def test_thrashed_by_decoys(self):
        """The TRRespass weakness: more aggressors than entries."""
        tracker = TrrTracker(num_entries=4)
        for round_index in range(100):
            for row in range(10):  # 10 distinct rows > 4 entries
                tracker.on_activate(row)
        # No row ever accumulates enough weight to be mitigated.
        assert tracker.on_refresh() == []

    def test_ignores_single_observations(self):
        tracker = TrrTracker(num_entries=4)
        tracker.on_activate(1)
        assert tracker.on_refresh() == []


class TestPride:
    def test_samples_into_fifo(self):
        tracker = PrideTracker(sample_probability=1.0, rng=random.Random(1))
        tracker.on_activate(5)
        assert list(tracker.fifo) == [5]

    def test_fifo_order_mitigation(self):
        tracker = PrideTracker(sample_probability=1.0, rng=random.Random(1))
        for row in (1, 2, 3):
            tracker.on_activate(row)
        assert tracker.on_refresh()[0].row == 1
        assert tracker.on_refresh()[0].row == 2

    def test_overflow_loses_oldest(self):
        tracker = PrideTracker(
            fifo_depth=2, sample_probability=1.0, rng=random.Random(1)
        )
        for row in (1, 2, 3):
            tracker.on_activate(row)
        assert list(tracker.fifo) == [2, 3]
        assert tracker.losses == 1

    def test_loss_probability_much_lower_than_single_entry(self):
        """Section IX: 4-entry FIFO cuts loss vs single-entry sampling."""
        deep = PrideTracker(fifo_depth=4, rng=random.Random(3))
        shallow = PrideTracker(fifo_depth=1, rng=random.Random(3))
        for tracker in (deep, shallow):
            for _ in range(4000):
                for _ in range(73):
                    tracker.on_activate(7)
                tracker.on_refresh()
        assert deep.loss_probability < shallow.loss_probability / 2


class TestGraphene:
    def test_sizes_from_threshold(self):
        tracker = GrapheneTracker(trh=2000)
        assert tracker.mitigation_threshold == 500
        assert tracker.num_entries == (73 * 8192) // 500

    def test_mitigates_on_threshold_crossing(self):
        tracker = GrapheneTracker(trh=8)  # threshold 2
        tracker.on_activate(9)
        tracker.on_activate(9)
        requests = tracker.drain()
        assert requests and requests[0].row == 9
        assert tracker.mitigations_issued == 1

    def test_counter_cleared_after_mitigation(self):
        tracker = GrapheneTracker(trh=8)
        tracker.on_activate(9)
        tracker.on_activate(9)
        tracker.drain()
        assert 9 not in tracker.counters

    def test_storage_scales_inverse_with_trh(self):
        small = GrapheneTracker(trh=3000)
        large = GrapheneTracker(trh=300)
        assert large.storage_bits == pytest.approx(
            10 * small.storage_bits, rel=0.25
        )

    def test_rejects_tiny_trh(self):
        with pytest.raises(ValueError):
            GrapheneTracker(trh=2)
