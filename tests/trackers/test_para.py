"""Tests for InDRAM-PARA (paper Section III)."""

import random

import pytest

from repro.trackers.para import InDramParaTracker, McParaPolicy


class TestSampling:
    def test_sampled_row_stored(self):
        tracker = InDramParaTracker(sample_probability=1.0, rng=random.Random(1))
        tracker.on_activate(42)
        assert tracker.sar == 42

    def test_refresh_mitigates_and_clears(self):
        tracker = InDramParaTracker(sample_probability=1.0, rng=random.Random(1))
        tracker.on_activate(42)
        requests = tracker.on_refresh()
        assert requests[0].row == 42
        assert tracker.sar is None

    def test_no_sample_no_mitigation(self):
        tracker = InDramParaTracker(sample_probability=1e-12, rng=random.Random(1))
        for row in range(73):
            tracker.on_activate(row)
        assert tracker.on_refresh() == []


class TestOverwriteSemantics:
    def test_overwrite_variant_replaces(self):
        tracker = InDramParaTracker(
            sample_probability=1.0, overwrite=True, rng=random.Random(1)
        )
        tracker.on_activate(1)
        tracker.on_activate(2)
        assert tracker.sar == 2
        assert tracker.overwrites == 1

    def test_no_overwrite_variant_keeps_first(self):
        tracker = InDramParaTracker(
            sample_probability=1.0, overwrite=False, rng=random.Random(1)
        )
        tracker.on_activate(1)
        tracker.on_activate(2)
        assert tracker.sar == 1
        assert tracker.overwrites == 0

    def test_names_distinguish_variants(self):
        a = InDramParaTracker(overwrite=True)
        b = InDramParaTracker(overwrite=False)
        assert a.name != b.name


class TestNonSelection:
    def test_full_window_misses_about_37_percent(self):
        """Equation 4: (1 - 1/73)^73 ~= 0.37 of full windows select
        nothing — the non-selection problem MINT eliminates."""
        tracker = InDramParaTracker(rng=random.Random(99))
        windows = 20_000
        empty = 0
        for _ in range(windows):
            for _ in range(73):
                tracker.on_activate(5)
            if not tracker.on_refresh():
                empty += 1
        assert empty / windows == pytest.approx(0.366, abs=0.02)


class TestMcPara:
    def test_probability_respected(self):
        policy = McParaPolicy(probability=1.0, rng=random.Random(1))
        assert policy.should_mitigate(5)
        assert policy.drfms_issued == 1

    def test_rate_statistics(self):
        policy = McParaPolicy(probability=0.1, rng=random.Random(5))
        hits = sum(policy.should_mitigate(1) for _ in range(20_000))
        assert hits / 20_000 == pytest.approx(0.1, abs=0.01)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            McParaPolicy(probability=0.0)
        with pytest.raises(ValueError):
            InDramParaTracker(sample_probability=1.5)
