"""Tests for the PRAC extension tracker (paper Section IX)."""

import random

import pytest

from repro.attacks import AttackParams, double_sided, postponement_decoy
from repro.sim.engine import run_attack
from repro.trackers.prac import (
    PRAC_TRC_NS,
    PracTracker,
    prac_throughput_cost,
    prac_timing,
)


class TestAlertMechanism:
    def test_alert_at_threshold(self):
        tracker = PracTracker(alert_threshold=4)
        for _ in range(4):
            tracker.on_activate(9)
        assert tracker.alerts_raised == 1
        assert tracker.count(9) == 0

    def test_alert_drained_at_refresh(self):
        tracker = PracTracker(alert_threshold=2)
        tracker.on_activate(9)
        tracker.on_activate(9)
        requests = tracker.on_refresh()
        assert requests and requests[0].row == 9
        assert tracker.on_refresh() == []

    def test_counts_mitigation_activations(self):
        tracker = PracTracker(alert_threshold=4)
        assert tracker.observes_mitigations
        tracker.on_mitigation_activate(9)
        assert tracker.count(9) == 1

    def test_multiple_alerts_batch(self):
        tracker = PracTracker(alert_threshold=1)
        tracker.on_activate(1)
        tracker.on_activate(2)
        assert len(tracker.on_refresh()) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            PracTracker(alert_threshold=0)


class TestSecurity:
    def test_deterministic_protection(self):
        """PRAC has no probabilistic tail: the double-sided attack is
        bounded at the alert threshold."""
        params = AttackParams(max_act=73, intervals=2000)
        tracker = PracTracker(alert_threshold=512)
        result = run_attack(
            tracker, double_sided(params, victim=params.base_row),
            trh=tracker.mintrh_d() * 2,
        )
        assert not result.failed

    def test_postponement_immune_without_dmq(self):
        """Counters live in the rows: postponement cannot dislodge them
        (unlike MINT/PARFM, Table IV)."""
        params = AttackParams(max_act=73, intervals=500)
        tracker = PracTracker(alert_threshold=512)
        result = run_attack(
            tracker, postponement_decoy(60_000, params), trh=2000,
            allow_postponement=True,
        )
        assert not result.failed

    def test_mintrh_d_scales_with_threshold(self):
        low = PracTracker(alert_threshold=128).mintrh_d()
        high = PracTracker(alert_threshold=1024).mintrh_d()
        assert low < high


class TestCosts:
    def test_trc_stretched_to_52ns(self):
        timing = prac_timing()
        assert timing.t_rc_ns == PRAC_TRC_NS
        # Fewer activations fit per interval: the throughput cost.
        assert timing.max_act < 73

    def test_throughput_cost_near_8_percent(self):
        """Section IX: tRC 48 -> 52 ns is ~10% slower; the activation
        throughput loss is 1 - 48/52 ~ 7.7%."""
        assert prac_throughput_cost() == pytest.approx(0.077, abs=0.005)

    def test_storage_is_dram_array_bits(self):
        tracker = PracTracker(counter_bits=10, num_rows=1024)
        assert tracker.storage_bits == 10 * 1024
