"""Tests for the tracker factory registry."""

import random

import pytest

from repro.core.dmq import DelayedMitigationQueue
from repro.trackers import available_trackers, make_tracker, register
from repro.trackers.base import NullTracker, Tracker


class TestFactories:
    def test_all_registered_names_build(self):
        for name in available_trackers():
            tracker = make_tracker(name, rng=random.Random(1))
            assert isinstance(tracker, Tracker)

    def test_expected_designs_present(self):
        names = available_trackers()
        for expected in ("mint", "parfm", "prct", "mithril", "para",
                         "protrr", "trr", "pride", "graphene", "none"):
            assert expected in names

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            make_tracker("definitely-not-a-tracker")

    def test_case_insensitive(self):
        assert make_tracker("MINT").name == "MINT"

    def test_dmq_wrapping(self):
        tracker = make_tracker("mint", dmq=True)
        assert isinstance(tracker, DelayedMitigationQueue)
        assert tracker.max_act == 73

    def test_max_act_propagates(self):
        tracker = make_tracker("mint", max_act=16)
        assert tracker.max_act == 16
        para = make_tracker("para", max_act=16)
        assert para.p == pytest.approx(1 / 16)

    def test_extra_kwargs(self):
        tracker = make_tracker("mithril", num_entries=99)
        assert tracker.entries == 99

    def test_custom_registration(self):
        register("custom-null", lambda rng=None, max_act=73: NullTracker())
        assert isinstance(make_tracker("custom-null"), NullTracker)


class TestNullTracker:
    def test_never_mitigates(self):
        tracker = NullTracker()
        for row in range(100):
            tracker.on_activate(row)
        assert tracker.on_refresh() == []
        assert tracker.entries == 0
